package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"memcontention/internal/engine"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/simnet"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// newWorld builds a world with nMachines henri machines × ranksPer ranks.
func newWorld(t *testing.T, nMachines, ranksPer int) (*engine.Sim, *World) {
	t.Helper()
	sim := engine.NewSim()
	fabric, err := simnet.NewFabric(sim, 12.1, 1.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	plat := topology.Henri()
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	var machines []*simnet.Machine
	for i := 0; i < nMachines; i++ {
		m, err := simnet.NewMachine(sim, i, plat, prof)
		if err != nil {
			t.Fatal(err)
		}
		if err := fabric.Attach(m); err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	w, err := NewWorld(sim, fabric, machines, ranksPer)
	if err != nil {
		t.Fatal(err)
	}
	return sim, w
}

func run(t *testing.T, sim *engine.Sim, w *World, main func(*Ctx)) {
	t.Helper()
	w.Launch(main)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	var got Status
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 5, 64*units.MiB, 0, "hello"); err != nil {
				t.Error(err)
			}
		case 1:
			st, err := c.Recv(0, 5, 64*units.MiB, 0)
			if err != nil {
				t.Error(err)
			}
			got = st
		}
	})
	if got.Source != 0 || got.Tag != 5 || got.Size != 64*units.MiB {
		t.Errorf("status = %+v", got)
	}
	if got.Payload != "hello" {
		t.Errorf("payload = %v", got.Payload)
	}
	if got.AvgRate <= 0 {
		t.Error("inter-machine receive must report a transfer rate")
	}
}

func TestRecvBeforeSend(t *testing.T) {
	// Posted-receive path: the receive is posted first, the send matches
	// it later.
	sim, w := newWorld(t, 2, 1)
	completed := false
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			req, err := c.Irecv(1, 3, units.MiB, 0)
			if err != nil {
				t.Error(err)
			}
			if _, err := c.Wait(req); err != nil {
				t.Error(err)
			}
			completed = true
		case 1:
			c.Sleep(1e-3)
			if err := c.Send(0, 3, units.MiB, 0, nil); err != nil {
				t.Error(err)
			}
		}
	})
	if !completed {
		t.Error("posted receive never completed")
	}
}

func TestTagMatching(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	var order []int
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			// Send tag 2 first, then tag 1: the receiver asks for tag
			// 1 first and must get the right message regardless.
			if err := c.Send(1, 2, units.KiB, 0, 2); err != nil {
				t.Error(err)
			}
			if err := c.Send(1, 1, units.KiB, 0, 1); err != nil {
				t.Error(err)
			}
		case 1:
			c.Sleep(1e-3) // let both arrive as unexpected
			for _, tag := range []int{1, 2} {
				st, err := c.Recv(0, tag, units.KiB, 0)
				if err != nil {
					t.Error(err)
				}
				order = append(order, st.Payload.(int))
			}
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("tag matching broken: %v", order)
	}
}

func TestWildcards(t *testing.T) {
	sim, w := newWorld(t, 2, 2) // ranks 0,1 on machine 0; 2,3 on machine 1
	received := map[int]bool{}
	run(t, sim, w, func(c *Ctx) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				st, err := c.Recv(AnySource, AnyTag, units.KiB, 0)
				if err != nil {
					t.Error(err)
				}
				received[st.Source] = true
			}
			return
		}
		if err := c.Send(0, 10+c.Rank(), units.KiB, 0, nil); err != nil {
			t.Error(err)
		}
	})
	if len(received) != 3 {
		t.Errorf("wildcard receive saw sources %v, want 3 distinct", received)
	}
}

func TestEagerVsRendezvous(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	var eagerDone, rendezvousDone bool
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			// Eager: completes immediately even though no receive is
			// posted yet.
			req, err := c.Isend(1, 1, units.KiB, 0, nil)
			if err != nil {
				t.Error(err)
			}
			eagerDone = req.Test()
			// Rendezvous: must NOT complete before the receiver posts.
			req2, err := c.Isend(1, 2, 64*units.MiB, 0, nil)
			if err != nil {
				t.Error(err)
			}
			rendezvousDone = req2.Test()
			c.Wait(req2)
		case 1:
			c.Sleep(1e-3)
			if _, err := c.Recv(0, 1, units.KiB, 0); err != nil {
				t.Error(err)
			}
			if _, err := c.Recv(0, 2, 64*units.MiB, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if !eagerDone {
		t.Error("eager send must complete at post time")
	}
	if rendezvousDone {
		t.Error("rendezvous send must wait for the receiver")
	}
}

func TestIntraMachineMessage(t *testing.T) {
	sim, w := newWorld(t, 1, 2)
	var st Status
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 1, 8*units.MiB, 0, "local"); err != nil {
				t.Error(err)
			}
		case 1:
			var err error
			st, err = c.Recv(0, 1, 8*units.MiB, 0)
			if err != nil {
				t.Error(err)
			}
		}
	})
	if st.Payload != "local" {
		t.Error("intra-machine payload lost")
	}
	if st.AvgRate != 0 {
		t.Error("intra-machine message must not report a fabric rate")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	var after []float64
	run(t, sim, w, func(c *Ctx) {
		c.Sleep(float64(c.Rank()) * 1e-3) // ranks arrive staggered
		c.Barrier()
		after = append(after, c.Now())
	})
	if len(after) != 4 {
		t.Fatalf("%d ranks passed the barrier", len(after))
	}
	for _, ts := range after {
		if math.Abs(ts-3e-3) > 1e-12 {
			t.Errorf("rank left barrier at %v, want 3ms (slowest rank)", ts)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	count := 0
	run(t, sim, w, func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Barrier()
			if c.Rank() == 0 {
				count++
			}
		}
	})
	if count != 3 {
		t.Errorf("barrier rounds = %d, want 3", count)
	}
}

func TestWaitAll(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			var reqs []*Request
			for i := 0; i < 4; i++ {
				r, err := c.Isend(1, i, units.MiB, 0, nil)
				if err != nil {
					t.Error(err)
				}
				reqs = append(reqs, r)
			}
			if err := c.WaitAll(reqs...); err != nil {
				t.Error(err)
			}
		case 1:
			var reqs []*Request
			for i := 0; i < 4; i++ {
				r, err := c.Irecv(0, i, units.MiB, 0)
				if err != nil {
					t.Error(err)
				}
				reqs = append(reqs, r)
			}
			if err := c.WaitAll(reqs...); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestValidationErrors(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	run(t, sim, w, func(c *Ctx) {
		if c.Rank() != 0 {
			return
		}
		if _, err := c.Isend(99, 1, units.KiB, 0, nil); err == nil {
			t.Error("send to unknown rank must fail")
		}
		if _, err := c.Isend(1, -1, units.KiB, 0, nil); err == nil {
			t.Error("negative tag send must fail")
		}
		if _, err := c.Isend(1, 1, 0, 0, nil); err == nil {
			t.Error("zero-size send must fail")
		}
		if _, err := c.Irecv(99, 1, units.KiB, 0); err == nil {
			t.Error("receive from unknown rank must fail")
		}
		if _, err := c.Wait(nil); err == nil {
			t.Error("wait on nil request must fail")
		}
	})
}

func TestNewWorldValidation(t *testing.T) {
	sim := engine.NewSim()
	fabric, err := simnet.NewFabric(sim, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(sim, fabric, nil, 1); err == nil {
		t.Error("no machines must fail")
	}
	plat := topology.Henri()
	prof, _ := memsys.ProfileFor("henri")
	m, _ := simnet.NewMachine(sim, 0, plat, prof)
	if _, err := NewWorld(sim, fabric, []*simnet.Machine{m}, 0); err == nil {
		t.Error("zero ranks per machine must fail")
	}
}

func TestComputeAggregatesBandwidth(t *testing.T) {
	sim, w := newWorld(t, 1, 1)
	var bw units.Bandwidth
	run(t, sim, w, func(c *Ctx) {
		cores := c.Machine().Topo.SocketSet(0).Take(4)
		a := kernels.Assignment{
			Kernel: kernels.New(kernels.NTMemset),
			Cores:  []topology.CoreID(cores),
			Node:   0,
		}
		var err error
		bw, err = c.Compute(a, 64*units.MiB)
		if err != nil {
			t.Error(err)
		}
	})
	// 4 unsaturated local cores: 4 × 5 GB/s.
	if math.Abs(bw.GBps()-20) > 1e-6 {
		t.Errorf("compute bandwidth = %v, want 20", bw.GBps())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	trace := func() string {
		sim, w := newWorld(t, 2, 2)
		var events []string
		w.Launch(func(c *Ctx) {
			for step := 0; step < 2; step++ {
				peer := (c.Rank() + 2) % 4
				if c.Rank() < 2 {
					if err := c.Send(peer, step, units.MiB, 0, nil); err != nil {
						t.Error(err)
					}
				} else {
					st, err := c.Recv(peer, step, units.MiB, 0)
					if err != nil {
						t.Error(err)
					}
					events = append(events, fmt.Sprintf("%d<-%d@%.9f", c.Rank(), st.Source, c.Now()))
				}
				c.Barrier()
			}
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(events, ";")
	}
	first := trace()
	for i := 0; i < 3; i++ {
		if got := trace(); got != first {
			t.Fatalf("MPI schedule not deterministic:\n%s\n%s", first, got)
		}
	}
}

func TestUnmatchedRecvDeadlocks(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	w.Launch(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Recv(1, 1, units.MiB, 0) // never sent
		}
	})
	err := sim.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unmatched receive must deadlock, got %v", err)
	}
}

func TestWorldSize(t *testing.T) {
	_, w := newWorld(t, 3, 2)
	if w.Size() != 6 {
		t.Errorf("Size = %d, want 6", w.Size())
	}
}

func TestEagerLimitBoundary(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	run(t, sim, w, func(c *Ctx) {
		switch c.Rank() {
		case 0:
			// Exactly at the limit: still eager.
			atLimit, err := c.Isend(1, 1, EagerLimit, 0, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if !atLimit.Test() {
				t.Error("a send of exactly EagerLimit bytes must be eager")
			}
			// One byte over: rendezvous.
			over, err := c.Isend(1, 2, EagerLimit+1, 0, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if over.Test() {
				t.Error("EagerLimit+1 bytes must use the rendezvous path")
			}
			c.WaitAll(atLimit, over)
		case 1:
			c.Sleep(1e-4)
			if _, err := c.Recv(0, 1, EagerLimit, 0); err != nil {
				t.Error(err)
			}
			if _, err := c.Recv(0, 2, EagerLimit+1, 0); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	// A rank may message itself (same machine fast path).
	sim, w := newWorld(t, 1, 1)
	run(t, sim, w, func(c *Ctx) {
		req, err := c.Isend(0, 5, units.KiB, 0, "self")
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Recv(0, 5, units.KiB, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Payload != "self" {
			t.Error("self-message payload lost")
		}
		c.Wait(req)
	})
}
