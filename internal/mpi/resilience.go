package mpi

import (
	"errors"
	"fmt"
)

// Resilience configures how the MPI layer survives an imperfect fabric
// (see internal/faults). The zero value reproduces the historical
// semantics: no timeouts, no retries — a lost message or a missing peer
// ends in a deadlock diagnosis instead of a structured operation error.
type Resilience struct {
	// OpTimeout bounds, in simulated seconds, how long a Wait (and
	// therefore a blocking Send or Recv) may block before failing with
	// an OpError wrapping ErrTimeout. 0 disables timeouts.
	OpTimeout float64
	// MaxRetries is how many times a message the fabric dropped is
	// resent before the operation fails with an OpError wrapping
	// simnet.ErrMessageDropped. 0 disables retries.
	MaxRetries int
	// RetryBackoff is the simulated delay before the first resend; it
	// doubles on every further attempt (exponential backoff). When
	// retries are enabled and no backoff is given, DefaultRetryBackoff
	// applies.
	RetryBackoff float64
}

// DefaultRetryBackoff is the initial resend delay when retries are
// enabled without an explicit backoff (1 ms of simulated time).
const DefaultRetryBackoff = 1e-3

// backoff reports the resend delay before attempt n (1-based), doubling
// per attempt.
func (r Resilience) backoff(attempt int) float64 {
	b := r.RetryBackoff
	if b <= 0 {
		b = DefaultRetryBackoff
	}
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}

// Validate rejects non-finite or negative settings.
func (r Resilience) Validate() error {
	if r.OpTimeout < 0 || r.OpTimeout != r.OpTimeout {
		return fmt.Errorf("mpi: OpTimeout must be non-negative and finite, got %v", r.OpTimeout)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("mpi: MaxRetries must be non-negative, got %d", r.MaxRetries)
	}
	if r.RetryBackoff < 0 || r.RetryBackoff != r.RetryBackoff {
		return fmt.Errorf("mpi: RetryBackoff must be non-negative and finite, got %v", r.RetryBackoff)
	}
	return nil
}

// SetResilience installs the world's resilience policy. Call it before
// Launch; the policy applies to every rank.
func (w *World) SetResilience(r Resilience) error {
	if err := r.Validate(); err != nil {
		return err
	}
	w.res = r
	return nil
}

// ErrTimeout reports an operation that exceeded Resilience.OpTimeout.
var ErrTimeout = errors.New("mpi: operation timed out")

// OpError is a structured MPI failure: which rank, which operation, at
// what simulated time, and the underlying cause (use errors.Is/As for
// ErrTimeout, simnet.ErrMessageDropped or *simnet.DownError).
type OpError struct {
	// Rank is the world rank whose operation failed.
	Rank int
	// Op describes the operation, e.g. "Recv(src=1, tag=7)".
	Op string
	// Time is the simulated time of the failure in seconds.
	Time float64
	// Err is the underlying cause.
	Err error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s failed at t=%.6fs: %v", e.Rank, e.Op, e.Time, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }

// opError builds a structured failure at the current simulated time.
func (w *World) opError(rank int, op string, cause error) *OpError {
	return &OpError{Rank: rank, Op: op, Time: w.sim.Now(), Err: cause}
}

// rankName renders a rank id, with -1 (wildcards) as "any".
func rankName(r int) string {
	if r < 0 {
		return "any"
	}
	return fmt.Sprint(r)
}

// tagName renders a tag, with -1 (AnyTag) as "any".
func tagName(t int) string {
	if t < 0 {
		return "any"
	}
	return fmt.Sprint(t)
}

// opName describes the request's operation for errors and wait states.
func (r *Request) opName() string {
	if r.isRecv {
		return fmt.Sprintf("Recv(src=%s, tag=%s)", rankName(r.src), tagName(r.tag))
	}
	return fmt.Sprintf("Send(dst=%s, tag=%s)", rankName(r.peer), tagName(r.tag))
}

// String implements fmt.Stringer so a Request can be a lazy wait reason
// (engine.Proc.SetWaitStringer) without rendering on the happy path.
func (r *Request) String() string { return r.opName() }
