// Package netbench measures the simulated network the way MPI
// benchmarking suites do: a ping-pong between two machines swept over
// message sizes, yielding the classic latency→bandwidth curve. The paper's
// model assumes large messages ("big messages are exchanged", §I); this
// sweep locates the message size where its bandwidth assumption becomes
// valid, and doubles as an end-to-end exercise of the DES + MPI substrate.
package netbench

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"memcontention/internal/checkpoint"
	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/mpi"
	"memcontention/internal/obs"
	"memcontention/internal/simnet"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Point is one ping-pong measurement.
type Point struct {
	Size units.ByteSize `json:"size"`
	// HalfRTT is the one-way time in seconds (round trip / 2).
	HalfRTT float64 `json:"half_rtt"`
	// Bandwidth is Size / HalfRTT in GB/s.
	Bandwidth float64 `json:"bandwidth"`
}

// Config parameterises a ping-pong sweep.
type Config struct {
	Platform *topology.Platform
	Profile  *memsys.Profile
	// Node is the NUMA node holding both ranks' buffers.
	Node topology.NodeID
	// Iterations per size (round trips averaged). Default 4.
	Iterations int
	// Sizes to sweep. Default: 1 KiB .. 64 MiB, powers of four.
	Sizes []units.ByteSize
	// Registry, when set, receives sweep telemetry and the per-size
	// simulations' engine instruments. Nil disables instrumentation.
	Registry *obs.Registry
	// Context, when set, cancels the sweep cooperatively: PingPong
	// returns ctx's error at the next size boundary and the in-flight
	// simulation stops between events. Nil keeps the sweep check-free.
	Context context.Context
	// Journal, when set, checkpoints each completed size: a resumed
	// sweep returns journaled points instead of re-simulating them.
	Journal *checkpoint.Journal
}

// scope condenses everything that determines a sweep's points into a
// stable journal-key prefix (the profile is content-hashed because custom
// profiles may reuse a built-in platform's name).
func (c Config) scope() string {
	h := fnv.New64a()
	if data, err := json.Marshal(c.Profile); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("netbench|%s|node=%d|iters=%d|prof=%016x", c.Platform.Name, c.Node, c.Iterations, h.Sum64())
}

func (c Config) withDefaults() (Config, error) {
	if c.Platform == nil {
		return c, fmt.Errorf("netbench: nil platform")
	}
	if c.Profile == nil {
		prof, err := memsys.ProfileFor(c.Platform.Name)
		if err != nil {
			return c, err
		}
		c.Profile = prof
	}
	if c.Iterations <= 0 {
		c.Iterations = 4
	}
	if len(c.Sizes) == 0 {
		for s := units.KiB; s <= 64*units.MiB; s *= 4 {
			c.Sizes = append(c.Sizes, s)
		}
	}
	return c, nil
}

// PingPong runs the sweep and returns one point per size.
func PingPong(cfg Config) ([]Point, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(cfg.Sizes))
	sweeps := cfg.Registry.Counter("memcontention_netbench_points_total", "Ping-pong sweep points measured.", nil)
	bw := cfg.Registry.Histogram("memcontention_netbench_bandwidth_gbps", "Ping-pong bandwidths over the size sweep.", obs.BandwidthBuckets(), nil)
	rtt := cfg.Registry.Histogram("memcontention_netbench_half_rtt_seconds", "One-way ping-pong times over the size sweep.", obs.DurationBuckets(), nil)
	scope := cfg.scope()
	for _, size := range cfg.Sizes {
		key := fmt.Sprintf("%s|size=%d", scope, size)
		if cfg.Journal != nil {
			var cached Point
			if ok, err := cfg.Journal.Get(key, &cached); err != nil {
				return nil, fmt.Errorf("netbench: journal entry %s: %w", key, err)
			} else if ok {
				points = append(points, cached)
				continue
			}
		}
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return nil, fmt.Errorf("netbench: sweep canceled at size %s: %w", size, err)
			}
		}
		pt, err := pingPongOne(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("netbench: size %s: %w", size, err)
		}
		sweeps.Inc()
		bw.Observe(pt.Bandwidth)
		rtt.Observe(pt.HalfRTT)
		if err := cfg.Journal.Record(key, pt); err != nil {
			return nil, fmt.Errorf("netbench: journal %s: %w", key, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

// pingPongOne runs one fresh two-machine simulation for a single size (a
// fresh simulation per size keeps measurements independent).
func pingPongOne(cfg Config, size units.ByteSize) (Point, error) {
	sim := engine.NewSim()
	sim.SetRegistry(cfg.Registry)
	sim.SetContext(cfg.Context)
	wire := simnet.WireRateFor(cfg.Platform.NIC.Tech, cfg.Platform.NIC.PCIeGen)
	fabric, err := simnet.NewFabric(sim, wire, 1.5e-6)
	if err != nil {
		return Point{}, err
	}
	var machines []*simnet.Machine
	for i := 0; i < 2; i++ {
		m, err := simnet.NewMachine(sim, i, cfg.Platform, cfg.Profile)
		if err != nil {
			return Point{}, err
		}
		if err := fabric.Attach(m); err != nil {
			return Point{}, err
		}
		m.Flows.SetRegistry(cfg.Registry)
		machines = append(machines, m)
	}
	world, err := mpi.NewWorld(sim, fabric, machines, 1)
	if err != nil {
		return Point{}, err
	}

	const tag = 99
	var start, end float64
	world.Launch(func(c *mpi.Ctx) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start = c.Now()
			for i := 0; i < cfg.Iterations; i++ {
				if err := c.Send(1, tag, size, cfg.Node, nil); err != nil {
					panic(err)
				}
				if _, err := c.Recv(1, tag, size, cfg.Node); err != nil {
					panic(err)
				}
			}
			end = c.Now()
		case 1:
			c.Barrier()
			for i := 0; i < cfg.Iterations; i++ {
				if _, err := c.Recv(0, tag, size, cfg.Node); err != nil {
					panic(err)
				}
				if err := c.Send(0, tag, size, cfg.Node, nil); err != nil {
					panic(err)
				}
			}
		}
	})
	if err := sim.Run(); err != nil {
		return Point{}, err
	}
	halfRTT := (end - start) / float64(2*cfg.Iterations)
	if halfRTT <= 0 {
		return Point{}, fmt.Errorf("non-positive half RTT")
	}
	return Point{
		Size:      size,
		HalfRTT:   halfRTT,
		Bandwidth: float64(size) / units.BytesPerGB / halfRTT,
	}, nil
}
