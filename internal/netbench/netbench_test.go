package netbench

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func TestPingPongCurveShape(t *testing.T) {
	pts, err := PingPong(Config{Platform: topology.Henri(), Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Bandwidth must be monotonically non-decreasing with message size
	// (latency amortises away) and converge near the nominal rate.
	prev := 0.0
	for _, p := range pts {
		if p.Bandwidth < prev-1e-9 {
			t.Errorf("%s: bandwidth %.3f dropped below %.3f", p.Size, p.Bandwidth, prev)
		}
		prev = p.Bandwidth
		if p.HalfRTT <= 0 {
			t.Errorf("%s: non-positive half RTT", p.Size)
		}
	}
	small, large := pts[0], pts[len(pts)-1]
	if small.Bandwidth > 0.5*large.Bandwidth {
		t.Errorf("1 KiB messages (%.2f GB/s) must be latency-dominated vs %.2f GB/s", small.Bandwidth, large.Bandwidth)
	}
	// Large messages approach the NIC's nominal receive rate (10.9 on
	// node 0), bounded by it.
	if large.Bandwidth > 10.9+0.1 {
		t.Errorf("large-message bandwidth %.2f exceeds the nominal rate", large.Bandwidth)
	}
	if large.Bandwidth < 0.8*10.9 {
		t.Errorf("large-message bandwidth %.2f too far from nominal 10.9", large.Bandwidth)
	}
	// Latency floor: the smallest message's half RTT is at least the
	// fabric latency.
	if small.HalfRTT < 1.5e-6 {
		t.Errorf("half RTT %.2e below the fabric latency", small.HalfRTT)
	}
}

func TestPingPongLocalitySensitivity(t *testing.T) {
	// On diablo the NIC-local node yields much higher large-message
	// bandwidth — the sweep must see the locality split end to end.
	sizes := []units.ByteSize{64 * units.MiB}
	far, err := PingPong(Config{Platform: topology.Diablo(), Node: 0, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	near, err := PingPong(Config{Platform: topology.Diablo(), Node: 1, Sizes: sizes})
	if err != nil {
		t.Fatal(err)
	}
	ratio := near[0].Bandwidth / far[0].Bandwidth
	if ratio < 1.5 {
		t.Errorf("NIC-local node must be much faster, ratio %.2f", ratio)
	}
}

func TestPingPongValidation(t *testing.T) {
	if _, err := PingPong(Config{}); err == nil {
		t.Error("nil platform must fail")
	}
	custom, err := topology.NewBuilder("x").
		CPU(topology.Intel, "x").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(2).
		MemoryPerNodeGB(4).
		NICOn("n", topology.InfiniBand, 1, 3).
		LinkName("UPI").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PingPong(Config{Platform: custom}); err == nil {
		t.Error("custom platform without profile must fail")
	}
}

func TestPingPongDeterministic(t *testing.T) {
	cfg := Config{Platform: topology.Henri(), Node: 0, Sizes: []units.ByteSize{units.MiB}}
	a, err := PingPong(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PingPong(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("ping-pong must be deterministic")
	}
}

func TestPingPongJournalResumeAndCancel(t *testing.T) {
	sizes := []units.ByteSize{units.KiB, 4 * units.KiB, 16 * units.KiB}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Platform: topology.Henri(), Sizes: sizes, Journal: j}
	fresh, err := PingPong(base)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != len(sizes) {
		t.Fatalf("journal has %d entries, want %d", j.Len(), len(sizes))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a pre-canceled context: every size is journaled, so
	// the sweep completes from the cache without hitting the check.
	j2, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resumed, err := PingPong(Config{Platform: topology.Henri(), Sizes: sizes, Journal: j2, Context: ctx})
	if err != nil {
		t.Fatalf("fully journaled sweep must not observe cancellation: %v", err)
	}
	if !reflect.DeepEqual(fresh, resumed) {
		t.Fatalf("resumed points differ:\n%+v\n%+v", fresh, resumed)
	}

	// A sweep with un-journaled work left does stop.
	more := append(append([]units.ByteSize(nil), sizes...), 64*units.KiB)
	_, err = PingPong(Config{Platform: topology.Henri(), Sizes: more, Journal: j2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
