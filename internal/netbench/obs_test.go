package netbench

import (
	"testing"

	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func TestPingPongInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	pts, err := PingPong(Config{Platform: topology.Henri(), Node: 0, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("memcontention_netbench_points_total", "", nil).Value(); got != float64(len(pts)) {
		t.Errorf("points counter = %v, want %d", got, len(pts))
	}
	if got := reg.Histogram("memcontention_netbench_bandwidth_gbps", "", nil, nil).Count(); got != uint64(len(pts)) {
		t.Errorf("bandwidth observations = %d, want %d", got, len(pts))
	}
	if got := reg.Histogram("memcontention_netbench_half_rtt_seconds", "", nil, nil).Count(); got != uint64(len(pts)) {
		t.Errorf("half-RTT observations = %d, want %d", got, len(pts))
	}
	// The per-size simulations share the registry, so engine flow
	// counters accumulate across the whole sweep.
	if got := reg.Counter("memcontention_engine_flows_started_total", "", nil).Value(); got == 0 {
		t.Error("no engine flows recorded across the sweep")
	}
}
