package obs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memcontention/internal/atomicio"
)

// JSONLWriter is anything that can stream itself as JSON Lines — in this
// repo, trace.Recorder. The indirection keeps obs dependency-free.
type JSONLWriter interface {
	WriteJSONL(w io.Writer) error
}

// CLI bundles the telemetry command-line flags shared by every cmd:
//
//	-metrics <file>    write a Prometheus text exposition snapshot at exit
//	-trace <file>      write the simulation event trace as JSON Lines
//	-manifest <file>   write a run manifest (JSON) including all instruments
//	-pprof <addr>      serve net/http/pprof on addr for the process lifetime
//
// Register the flags, call Start after flag parsing, and Finish on the way
// out. Commands without an event trace simply don't register -trace.
type CLI struct {
	MetricsPath  string
	TracePath    string
	ManifestPath string
	PprofAddr    string
}

// Register adds the telemetry flags to fs. withTrace controls whether the
// -trace flag exists (only commands that run the discrete-event simulator
// produce traces).
func (c *CLI) Register(fs *flag.FlagSet, withTrace bool) {
	fs.StringVar(&c.MetricsPath, "metrics", "", "write metrics in Prometheus text format to this file at exit")
	if withTrace {
		fs.StringVar(&c.TracePath, "trace", "", "write the simulation event trace as JSON Lines to this file")
	}
	fs.StringVar(&c.ManifestPath, "manifest", "", "write a run manifest (JSON, includes instrument snapshot) to this file")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// WantsRegistry reports whether any output needs a live registry.
func (c *CLI) WantsRegistry() bool {
	return c.MetricsPath != "" || c.ManifestPath != ""
}

// WantsTrace reports whether the command should record an event trace.
func (c *CLI) WantsTrace() bool { return c.TracePath != "" }

// NewRegistry returns a fresh registry when one is wanted, else nil —
// callers thread the result through unconditionally and instrumentation
// stays no-op when telemetry is off.
func (c *CLI) NewRegistry() *Registry {
	if !c.WantsRegistry() {
		return nil
	}
	return NewRegistry()
}

// Start brings up the pprof server when requested, logging the bound
// address to stderr.
func (c *CLI) Start() error {
	if c.PprofAddr == "" {
		return nil
	}
	addr, err := StartPprofServer(c.PprofAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
	return nil
}

// writeFile streams fn into path through the durable write path, so a
// crash mid-write can never leave a torn metrics/trace/manifest artifact.
func writeFile(path string, fn func(io.Writer) error) error {
	return atomicio.WriteStream(path, 0o644, fn)
}

// Finish writes the requested artifacts: metrics from reg, the trace from
// tr (may be nil when no simulation ran), and the manifest with the final
// instrument snapshot attached.
func (c *CLI) Finish(reg *Registry, tr JSONLWriter, man *Manifest) error {
	if c.MetricsPath != "" {
		if err := writeFile(c.MetricsPath, reg.WritePrometheus); err != nil {
			return fmt.Errorf("writing -metrics: %w", err)
		}
	}
	if c.TracePath != "" {
		if tr == nil {
			return fmt.Errorf("writing -trace: no event trace was recorded")
		}
		if err := writeFile(c.TracePath, tr.WriteJSONL); err != nil {
			return fmt.Errorf("writing -trace: %w", err)
		}
	}
	if c.ManifestPath != "" {
		if man == nil {
			man = NewManifest("unknown")
		}
		man.AttachRegistry(reg)
		if err := writeFile(c.ManifestPath, man.WriteJSON); err != nil {
			return fmt.Errorf("writing -manifest: %w", err)
		}
	}
	return nil
}
