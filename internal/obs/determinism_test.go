package obs

import (
	"bytes"
	"testing"
)

// marshalTwice renders fn twice and fails unless both passes emit the
// same bytes — the repo-wide regression net for map-iteration order
// leaking into an exporter.
func marshalTwice(t *testing.T, name string, fn func(*bytes.Buffer) error) {
	t.Helper()
	var a, b bytes.Buffer
	if err := fn(&a); err != nil {
		t.Fatalf("%s first pass: %v", name, err)
	}
	if err := fn(&b); err != nil {
		t.Fatalf("%s second pass: %v", name, err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("%s is not byte-stable across passes:\n--- first ---\n%s\n--- second ---\n%s", name, a.String(), b.String())
	}
}

// TestRegistryJSONByteStable marshals the JSON exposition twice.
func TestRegistryJSONByteStable(t *testing.T) {
	r := goldenRegistry()
	marshalTwice(t, "Registry.WriteJSON", func(buf *bytes.Buffer) error { return r.WriteJSON(buf) })
}

// TestManifestByteStable marshals a manifest with labeled instruments and
// a notes map twice; both maps must render sorted.
func TestManifestByteStable(t *testing.T) {
	m := NewManifest("memtest")
	m.Platform = "henri"
	m.Seed = 7
	m.Args = []string{"-platform", "henri", "-seed", "7"}
	m.Notes = map[string]string{"placement": "spread", "msg": "8MiB", "kernel": "triad"}
	m.AttachRegistry(goldenRegistry())
	marshalTwice(t, "Manifest.WriteJSON", func(buf *bytes.Buffer) error { return m.WriteJSON(buf) })
}
