package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// Le is the inclusive upper bound ("le" as in Prometheus);
	// math.Inf(1) marks the overflow bucket.
	Le float64 `json:"le"`
	// Count is the cumulative observation count up to Le.
	Count uint64 `json:"count"`
}

// Snapshot is the exported state of one series, the unit of both the JSON
// exporter and the manifest's instrument dump.
type Snapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value (unused for histograms).
	Value float64 `json:"value"`
	// Sum/Count/Buckets are histogram-only.
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON renders the kind-appropriate fields only, keeping the JSON
// schema stable: counters and gauges carry "value", histograms carry
// "sum"/"count"/"buckets" (always present, even when zero).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	if s.Kind == "histogram" {
		return json.Marshal(struct {
			Name    string            `json:"name"`
			Kind    string            `json:"kind"`
			Help    string            `json:"help,omitempty"`
			Labels  map[string]string `json:"labels,omitempty"`
			Sum     float64           `json:"sum"`
			Count   uint64            `json:"count"`
			Buckets []Bucket          `json:"buckets"`
		}{s.Name, s.Kind, s.Help, s.Labels, s.Sum, s.Count, s.Buckets})
	}
	return json.Marshal(struct {
		Name   string            `json:"name"`
		Kind   string            `json:"kind"`
		Help   string            `json:"help,omitempty"`
		Labels map[string]string `json:"labels,omitempty"`
		Value  float64           `json:"value"`
	}{s.Name, s.Kind, s.Help, s.Labels, s.Value})
}

// MarshalJSON renders +Inf as the string "+Inf" (JSON has no infinity).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.Le, 1) {
		le = formatFloat(b.Le)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// Snapshot captures every registered series in canonical (name, labels)
// order. A nil registry yields an empty slice.
func (r *Registry) Snapshot() []Snapshot {
	metrics := r.sortedMetrics()
	out := make([]Snapshot, 0, len(metrics))
	for _, m := range metrics {
		s := Snapshot{Name: m.name, Kind: m.kind.String(), Help: m.help}
		if len(m.labels) > 0 {
			s.Labels = map[string]string(m.labels)
		}
		switch m.kind {
		case kindCounter:
			s.Value = m.counter.Value()
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindHistogram:
			bounds, cumulative, sum, count := m.histogram.snapshot()
			s.Sum, s.Count = sum, count
			s.Buckets = make([]Bucket, 0, len(cumulative))
			for i, c := range cumulative {
				le := math.Inf(1)
				if i < len(bounds) {
					le = bounds[i]
				}
				s.Buckets = append(s.Buckets, Bucket{Le: le, Count: c})
			}
		}
		out = append(out, s)
	}
	return out
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, deterministic.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines for label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders {k="v",...} with sorted keys plus optional extra
// pairs (used for the histogram "le" label).
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, escapeLabel(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, escapeLabel(extraVal)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE block per metric family, series
// sorted by name then label signature, deterministic float formatting. A
// nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, s := range r.Snapshot() {
		if s.Name != lastFamily {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				le := formatFloat(b.Le)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented, stable JSON (series
// in canonical order, sorted label keys). A nil registry writes an empty
// metrics list.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []Snapshot `json:"metrics"`
	}{Metrics: r.Snapshot()}
	if doc.Metrics == nil {
		doc.Metrics = []Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
