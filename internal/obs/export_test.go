package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry of the exporter-stability
// tests: one counter, one gauge, one histogram, as the naming convention
// prescribes.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("memcontention_engine_flows_started_total", "Transfers started by the flow manager.", nil).Add(42)
	r.Gauge("memcontention_engine_virtual_time_seconds", "Current simulated time.", nil).Set(0.001953125)
	h := r.Histogram("memcontention_engine_flow_avg_rate_gbps",
		"Average bandwidth of finished flows.", []float64{1, 8, 64}, L{"platform": "henri"})
	for _, v := range []float64{0.5, 6, 6, 12.1, 90} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.prom", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.json", buf.Bytes())
}

// TestExportDeterminism renders the same registry many times; map
// iteration order must never leak into the output.
func TestExportDeterminism(t *testing.T) {
	var first []byte
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := goldenRegistry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, first, buf.Bytes())
		}
	}
}

// TestPrometheusParseable walks the exposition text with a minimal parser:
// every non-comment line must be `name{labels} value` with a float value,
// and histogram series must end with a _count equal to the +Inf bucket.
func TestPrometheusParseable(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ParseExposition(buf.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if stats.Samples == 0 || len(stats.Families) != 3 {
		t.Errorf("parsed %d samples, %d families; want >0 and 3", stats.Samples, len(stats.Families))
	}
	want := map[string]string{
		"memcontention_engine_flows_started_total":  "counter",
		"memcontention_engine_virtual_time_seconds": "gauge",
		"memcontention_engine_flow_avg_rate_gbps":   "histogram",
	}
	for name, typ := range want {
		if stats.Families[name] != typ {
			t.Errorf("family %s = %q, want %q", name, stats.Families[name], typ)
		}
	}
}
