package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. All methods are no-ops on
// a nil receiver, so callers never branch on "is telemetry enabled".
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative or NaN deltas are ignored —
// counters only go up.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrary float64 that can go up and down. All methods are
// no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (a high-watermark helper).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow. All methods are no-ops on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	// memlint:guard mu
	counts []uint64 // len(bounds)+1, last is the +Inf bucket
	// memlint:guard mu
	sum float64
	// memlint:guard mu
	count uint64
}

// newHistogram copies and sanity-checks the bounds.
func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state under the lock.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.sum, h.count
}

// ExponentialBuckets returns count ascending upper bounds starting at
// start, each factor times the previous — the fixed log-scale buckets the
// telemetry uses for bandwidths and durations.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// BandwidthBuckets covers 0.125 GB/s to 512 GB/s in powers of two: the
// range spanned by one throttled core up to a full dual-socket machine.
func BandwidthBuckets() []float64 { return ExponentialBuckets(0.125, 2, 13) }

// DurationBuckets covers 1 µs to 1000 s in decades, fitting both single
// message transfers and whole evaluation campaigns.
func DurationBuckets() []float64 { return ExponentialBuckets(1e-6, 10, 10) }
