package obs

import (
	"net/http"
	"sync/atomic"
)

// Probe is the liveness/readiness state of a serving process. Liveness is
// implicit (the process answers at all); readiness is an explicit flag the
// server flips once its caches are warm and back off during a graceful
// drain, so load balancers stop routing before the listener closes.
// Methods are no-ops (and "not ready") on a nil receiver.
type Probe struct {
	ready atomic.Bool
}

// SetReady flips the readiness flag.
func (p *Probe) SetReady(v bool) {
	if p == nil {
		return
	}
	p.ready.Store(v)
}

// Ready reports the readiness flag (false on nil).
func (p *Probe) Ready() bool {
	if p == nil {
		return false
	}
	return p.ready.Load()
}

// Live serves a running Registry over HTTP — the live counterpart to the
// file exporters written at process exit. The handlers render under the
// same locks and in the same canonical order as the file exporters, so a
// quiesced registry scrapes byte-identically to its -metrics artifact,
// and a registry under concurrent load always scrapes internally
// consistent histograms (each histogram is snapshotted atomically).
//
//	/metrics       Prometheus text exposition format (version 0.0.4)
//	/metrics.json  the stable-JSON snapshot document
//	/healthz       200 while the process serves at all
//	/readyz        200 iff Probe reports ready, else 503
//
// OnScrape, when set, runs before each /metrics and /metrics.json render;
// servers use it to refresh derived gauges (rolling-window quantiles,
// window QPS) so scraped values are current as of the scrape.
type Live struct {
	Registry *Registry
	Probe    *Probe
	OnScrape func()
}

// Mount registers the live-plane routes on mux. A nil receiver mounts
// nothing.
func (l *Live) Mount(mux *http.ServeMux) {
	if l == nil {
		return
	}
	mux.HandleFunc("GET /metrics", l.metrics)
	mux.HandleFunc("GET /metrics.json", l.metricsJSON)
	mux.HandleFunc("GET /healthz", l.healthz)
	mux.HandleFunc("GET /readyz", l.readyz)
}

// Handler returns a mux with only the live-plane routes mounted.
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	l.Mount(mux)
	return mux
}

func (l *Live) scrapeHook() {
	if l == nil || l.OnScrape == nil {
		return
	}
	l.OnScrape()
}

func (l *Live) metrics(w http.ResponseWriter, _ *http.Request) {
	if l == nil {
		http.Error(w, "no live plane", http.StatusNotFound)
		return
	}
	l.scrapeHook()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Errors past the header are client disconnects; nothing to do.
	_ = l.Registry.WritePrometheus(w)
}

func (l *Live) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	if l == nil {
		http.Error(w, "no live plane", http.StatusNotFound)
		return
	}
	l.scrapeHook()
	w.Header().Set("Content-Type", "application/json")
	_ = l.Registry.WriteJSON(w)
}

func (l *Live) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (l *Live) readyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if l == nil || !l.Probe.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// MountPprof exposes the net/http/pprof handlers (registered on the
// default mux by the obs package's pprof import) under /debug/pprof/ on
// mux, so a server can carry the profiling plane on its own listener.
func MountPprof(mux *http.ServeMux) {
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
}
