package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestLiveRegistryConcurrentScrape hammers one registry from writer
// goroutines while scraper goroutines render it over HTTP, under -race.
// Every scrape must parse as well-formed Prometheus text with internally
// consistent histograms (+Inf bucket == _count, cumulative buckets
// nondecreasing), and once the writers quiesce, repeated scrapes must be
// byte-identical — the live plane inherits the exporters' determinism.
func TestLiveRegistryConcurrentScrape(t *testing.T) {
	const (
		writers    = 8
		scrapers   = 4
		iterations = 400
		scrapes    = 60
	)
	reg := NewRegistry()
	live := &Live{Registry: reg}
	h := live.Handler()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("memcontention_race_events_total", "Events.", L{"writer": fmt.Sprintf("%d", w%4)})
			g := reg.Gauge("memcontention_race_level_ratio", "Level.", nil)
			hist := reg.Histogram("memcontention_race_latency_seconds", "Latency.", DurationBuckets(), nil)
			for i := 0; i < iterations; i++ {
				c.Inc()
				g.Set(float64(i))
				hist.Observe(float64(i%7) * 1e-4)
			}
		}(w)
	}
	scrapeErrs := make(chan error, scrapers)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				if err := checkScrape(h); err != nil {
					scrapeErrs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		t.Error(err)
	}

	// Quiesced: scrapes are byte-identical and carry the final totals.
	_, first := get(t, h, "/metrics")
	_, second := get(t, h, "/metrics.json")
	_, again := get(t, h, "/metrics")
	_, againJSON := get(t, h, "/metrics.json")
	if first != again {
		t.Error("quiesced Prometheus scrapes differ byte-for-byte")
	}
	if second != againJSON {
		t.Error("quiesced JSON scrapes differ byte-for-byte")
	}
	stats, err := ParseExposition(first)
	if err != nil {
		t.Fatalf("final scrape does not parse: %v", err)
	}
	if got := stats.SumFamily("memcontention_race_events_total"); got != writers*iterations {
		t.Errorf("final counter total = %g, want %d", got, writers*iterations)
	}
}

// checkScrape renders both live endpoints once and validates internal
// consistency of what came back.
func checkScrape(h http.Handler) error {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		return fmt.Errorf("/metrics status %d", rec.Code)
	}
	// ParseExposition checks form and +Inf == _count per histogram.
	if _, err := ParseExposition(rec.Body.String()); err != nil {
		return fmt.Errorf("mid-load scrape invalid: %w", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	var doc struct {
		Metrics []struct {
			Name    string `json:"name"`
			Kind    string `json:"kind"`
			Count   uint64 `json:"count"`
			Buckets []struct {
				Le    json.RawMessage `json:"le"`
				Count uint64          `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		return fmt.Errorf("mid-load JSON scrape invalid: %w", err)
	}
	lastName := ""
	for _, m := range doc.Metrics {
		if m.Name < lastName {
			return fmt.Errorf("JSON scrape out of order: %q after %q", m.Name, lastName)
		}
		lastName = m.Name
		if m.Kind != "histogram" {
			continue
		}
		var prev uint64
		for _, b := range m.Buckets {
			if b.Count < prev {
				return fmt.Errorf("histogram %s buckets not cumulative: %d after %d", m.Name, b.Count, prev)
			}
			prev = b.Count
		}
		if len(m.Buckets) > 0 && m.Buckets[len(m.Buckets)-1].Count != m.Count {
			return fmt.Errorf("histogram %s +Inf bucket %d != count %d (torn snapshot)",
				m.Name, m.Buckets[len(m.Buckets)-1].Count, m.Count)
		}
	}
	return nil
}
