package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func liveFixtureRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("memcontention_live_requests_total", "Requests.", L{"code": "200"}).Add(7)
	reg.Gauge("memcontention_live_inflight_requests", "In flight.", nil).Set(2)
	h := reg.Histogram("memcontention_live_latency_seconds", "Latency.", DurationBuckets(), nil)
	h.Observe(0.001)
	h.Observe(0.1)
	return reg
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec, string(body)
}

func TestLiveMetricsMatchesFileExporter(t *testing.T) {
	reg := liveFixtureRegistry()
	live := &Live{Registry: reg}
	rec, body := get(t, live.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	var file bytes.Buffer
	if err := reg.WritePrometheus(&file); err != nil {
		t.Fatal(err)
	}
	if body != file.String() {
		t.Errorf("live scrape diverges from file exporter:\n--- live ---\n%s--- file ---\n%s", body, file.String())
	}
	stats, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if v, ok := stats.Value(`memcontention_live_requests_total{code="200"}`); !ok || v != 7 {
		t.Errorf("scraped counter = %v, %v; want 7, true", v, ok)
	}
	if got := stats.SumFamily("memcontention_live_requests_total"); got != 7 {
		t.Errorf("SumFamily = %g, want 7", got)
	}
}

func TestLiveMetricsJSONMatchesFileExporter(t *testing.T) {
	reg := liveFixtureRegistry()
	live := &Live{Registry: reg}
	rec, body := get(t, live.Handler(), "/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var file bytes.Buffer
	if err := reg.WriteJSON(&file); err != nil {
		t.Fatal(err)
	}
	if body != file.String() {
		t.Errorf("live JSON diverges from file exporter")
	}
	var doc struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("scrape is not valid JSON: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Errorf("got %d metrics, want 3", len(doc.Metrics))
	}
}

func TestLiveProbes(t *testing.T) {
	probe := &Probe{}
	live := &Live{Registry: NewRegistry(), Probe: probe}
	h := live.Handler()

	if rec, _ := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	}
	if rec, _ := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", rec.Code)
	}
	probe.SetReady(true)
	if rec, _ := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz after SetReady = %d, want 200", rec.Code)
	}
	probe.SetReady(false)
	if rec, _ := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d, want 503", rec.Code)
	}
}

func TestLiveOnScrapeRefreshesDerivedGauges(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("memcontention_live_p99_seconds", "Derived.", nil)
	calls := 0
	live := &Live{Registry: reg, OnScrape: func() { calls++; g.Set(float64(calls)) }}
	h := live.Handler()
	_, body := get(t, h, "/metrics")
	if !strings.Contains(body, "memcontention_live_p99_seconds 1") {
		t.Errorf("first scrape missing refreshed gauge:\n%s", body)
	}
	_, body = get(t, h, "/metrics.json")
	if calls != 2 || !strings.Contains(body, `"value": 2`) {
		t.Errorf("OnScrape calls = %d, body: %s", calls, body)
	}
}

func TestLiveNilSafety(t *testing.T) {
	var l *Live
	l.Mount(http.NewServeMux()) // must not panic
	var p *Probe
	p.SetReady(true)
	if p.Ready() {
		t.Error("nil Probe must not be ready")
	}
	// A Live with a nil registry serves the empty document.
	empty := &Live{}
	rec, body := get(t, empty.Handler(), "/metrics")
	if rec.Code != http.StatusOK || body != "" {
		t.Errorf("nil-registry /metrics = %d %q", rec.Code, body)
	}
}

func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	MountPprof(mux)
	rec, _ := get(t, mux, "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", rec.Code)
	}
}
