package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
)

// Manifest describes one tool run well enough to reproduce it: which
// binary, built from which revision, on which simulated platform, with
// which seed and kernel, plus a final snapshot of every instrument. It is
// deliberately free of wall-clock timestamps so that two identical runs
// emit byte-identical manifests.
type Manifest struct {
	Tool     string `json:"tool"`
	Version  string `json:"version"`
	Go       string `json:"go"`
	Platform string `json:"platform,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Args are the command-line arguments after the program name.
	Args []string `json:"args,omitempty"`
	// Notes carries tool-specific key/value context (message size,
	// placement, output paths...).
	Notes map[string]string `json:"notes,omitempty"`
	// Instruments is the registry snapshot at exit.
	Instruments []Snapshot `json:"instruments,omitempty"`
}

// NewManifest starts a manifest for the named tool, stamped with the
// binary's version control revision (git-describe style when available)
// and Go toolchain version.
func NewManifest(tool string) *Manifest {
	return &Manifest{Tool: tool, Version: BuildVersion(), Go: runtime.Version()}
}

// AttachRegistry snapshots reg into the manifest (nil-safe on both sides).
func (m *Manifest) AttachRegistry(reg *Registry) *Manifest {
	if m == nil {
		return nil
	}
	m.Instruments = reg.Snapshot()
	return m
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// BuildVersion reports a git-describe-style version for the running
// binary: the module version when released, else the VCS revision
// (shortened, "+dirty" when the tree was modified), else "devel".
func BuildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
