// Package obs is the repo's telemetry subsystem: a registry of typed
// instruments (counters, gauges, log-bucketed histograms), phase-timing
// spans, run manifests, and exporters rendering a registry as Prometheus
// text exposition format or as stable JSON.
//
// The package is dependency-free (standard library only) and designed so
// instrumentation is zero-cost when disabled: every method is safe on a
// nil receiver, and a nil *Registry hands out nil instruments whose
// operations are no-ops. Hot paths therefore hold instrument pointers
// unconditionally and never branch on "is telemetry on".
//
// Metric names follow the convention
//
//	memcontention_<pkg>_<name>_<unit>
//
// with units spelled out (_total for counters, _seconds, _gbps, _cores,
// _percent, _ratio). See docs/observability.md for the full catalogue.
//
// All instruments are safe for concurrent use: counters and gauges are
// lock-free atomics, histograms and the registry itself take a mutex.
// Exported values are deterministic — two identical simulation runs
// produce byte-identical exports — because the simulator itself is
// deterministic and no wall-clock quantity is ever recorded into a
// registry unless the caller explicitly chooses to.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// L is a set of constant instrument labels (Prometheus-style key/value
// pairs). Instruments with the same name but different label sets are
// distinct series under one metric family.
type L map[string]string

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// instrumentKind discriminates the typed instruments.
type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

func (k instrumentKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("instrumentKind(%d)", int(k))
	}
}

// metric is one registered series.
type metric struct {
	name     string
	help     string
	kind     instrumentKind
	labels   L
	labelSig string // canonical sorted k="v" signature, "" when unlabelled

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// metricKey identifies a series inside the registry.
type metricKey struct {
	name     string
	labelSig string
}

// Registry holds a process's instruments. The zero value is not usable;
// create registries with NewRegistry. A nil *Registry is a valid "telemetry
// off" registry: its getters return nil instruments and its exporters
// render an empty document.
type Registry struct {
	mu sync.Mutex
	// memlint:guard mu
	metrics map[metricKey]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[metricKey]*metric)}
}

// labelSig builds the canonical label signature, validating label names.
func labelSig(labels L) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating it with mk when
// absent. Kind mismatches are programming errors and panic.
func (r *Registry) lookup(name, help string, kind instrumentKind, labels L, mk func(*metric)) *metric {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := metricKey{name: name, labelSig: labelSig(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	cp := make(L, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	m := &metric{name: name, help: help, kind: kind, labels: cp, labelSig: key.labelSig}
	mk(m)
	r.metrics[key] = m
	return m
}

// Counter returns (creating on first use) the counter series name{labels}.
// A nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name, help string, labels L) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindCounter, labels, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge returns (creating on first use) the gauge series name{labels}.
// A nil registry returns a nil, no-op gauge.
func (r *Registry) Gauge(name, help string, labels L) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindGauge, labels, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// Histogram returns (creating on first use) the histogram series
// name{labels} with the given ascending bucket upper bounds (a +Inf
// overflow bucket is implicit). The buckets of the first registration win.
// A nil registry returns a nil, no-op histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels L) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindHistogram, labels, func(m *metric) { m.histogram = newHistogram(buckets) })
	return m.histogram
}

// sortedMetrics returns the registered series sorted by (name, labelSig),
// the canonical export order.
func (r *Registry) sortedMetrics() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelSig < out[j].labelSig
	})
	return out
}

// Len reports the number of registered series (0 for a nil registry).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}
