package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memcontention_test_ops_total", "ops", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters only go up
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("memcontention_test_ops_total", "ops", nil) != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	var g *Gauge // nil: all ops must be no-ops
	g.Set(4)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	r := NewRegistry()
	g = r.Gauge("memcontention_test_depth", "depth", nil)
	g.Set(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	g.SetMax(1.0) // lower: ignored
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax = %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("memcontention_test_bw_gbps", "bw", []float64{1, 10, 100}, nil)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 556.5; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	bounds, cum, _, _ := h.snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d buckets", len(bounds), len(cum))
	}
	// le=1: 0.5 and 1.0; le=10: +5.0; le=100: +50; +Inf: +500.
	want := []uint64{2, 3, 4, 5}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestNilRegistryHandsOutInertInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", nil)
	g := r.Gauge("x", "", nil)
	h := r.Histogram("x_gbps", "", BandwidthBuckets(), nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c != nil || g != nil || h != nil {
		t.Error("nil registry must return nil instruments")
	}
	if r.Len() != 0 {
		t.Error("nil registry must report 0 series")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry exposition must be empty, got %q", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("memcontention_test_thing", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("memcontention_test_thing", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name must panic")
		}
	}()
	r.Counter("bad name!", "", nil)
}

func TestLabelsMakeDistinctSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("memcontention_test_mape_percent", "", L{"platform": "henri"})
	b := r.Gauge("memcontention_test_mape_percent", "", L{"platform": "dahu"})
	if a == b {
		t.Fatal("different label sets must be different series")
	}
	a.Set(1)
	b.Set(2)
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("memcontention_test_racy_total", "", nil)
			h := r.Histogram("memcontention_test_racy_gbps", "", BandwidthBuckets(), nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 7))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("memcontention_test_racy_total", "", nil).Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("memcontention_test_racy_gbps", "", nil, nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(BandwidthBuckets()) != 13 || len(DurationBuckets()) != 10 {
		t.Error("default bucket layouts changed size")
	}
}

func TestSpanTiming(t *testing.T) {
	virtual := 0.0
	r := NewRegistry()
	h := r.Histogram("memcontention_test_phase_seconds", "", DurationBuckets(), nil)
	sp := StartSpan("phase").WithVirtualClock(func() float64 { return virtual }).ObserveVirtual(h)
	virtual = 2.5
	timing := sp.End()
	if timing.Name != "phase" || timing.Virtual != 2.5 {
		t.Errorf("timing = %+v, want Virtual 2.5", timing)
	}
	if timing.Wall < 0 {
		t.Errorf("wall time negative: %v", timing.Wall)
	}
	if h.Count() != 1 || h.Sum() != 2.5 {
		t.Errorf("histogram got count=%d sum=%v, want 1/2.5", h.Count(), h.Sum())
	}
	// Nil span: inert.
	var nilSpan *Span
	if got := nilSpan.WithVirtualClock(func() float64 { return 1 }).ObserveVirtual(h).End(); got != (Timing{}) {
		t.Errorf("nil span End = %+v, want zero", got)
	}
}

func TestManifestVersionAndAttach(t *testing.T) {
	r := NewRegistry()
	r.Counter("memcontention_test_ops_total", "", nil).Add(3)
	m := NewManifest("memmodel").AttachRegistry(r)
	if m.Tool != "memmodel" || m.Version == "" || m.Go == "" {
		t.Errorf("manifest incomplete: %+v", m)
	}
	if len(m.Instruments) != 1 || m.Instruments[0].Value != 3 {
		t.Errorf("instrument snapshot wrong: %+v", m.Instruments)
	}
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"tool": "memmodel"`) {
		t.Errorf("manifest JSON missing tool: %s", sb.String())
	}
}
