package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
)

// StartPprofServer serves net/http/pprof on addr (e.g. "localhost:6060")
// for the remainder of the process lifetime and returns the bound address
// (useful with ":0"). Profiling long evaluation sweeps is the intended
// use; the server is never started unless explicitly requested.
func StartPprofServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	go func() {
		// The error is ignored: the listener lives until process exit.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
