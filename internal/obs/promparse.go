package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ExpositionStats summarises a parsed Prometheus text document — enough
// for tests and tooling to assert an export is well-formed without
// depending on a Prometheus client library.
type ExpositionStats struct {
	// Families maps metric family name to declared type.
	Families map[string]string
	// Samples counts the value lines.
	Samples int
	// Values maps each sample series, rendered as name{labels} (or the
	// bare name when unlabelled), to its parsed value — enough for load
	// harnesses and smoke tests to read counters and gauges off a live
	// scrape without a Prometheus client library.
	Values map[string]float64
}

// Value reports the value of one series by its exact name{labels}
// rendering (bare name for unlabelled series).
func (s *ExpositionStats) Value(series string) (float64, bool) {
	v, ok := s.Values[series]
	return v, ok
}

// SumFamily sums every series of the named family across its label sets,
// skipping histogram component series (_bucket/_sum/_count are their own
// families). Summing a labelled counter family (e.g. requests by status
// code) yields the family total.
func (s *ExpositionStats) SumFamily(name string) float64 {
	var total float64
	for series, v := range s.Values {
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name {
			total += v
		}
	}
	return total
}

// ParseExposition validates s as Prometheus text exposition format
// (comments, `name{labels} value` samples, histograms with consistent
// _bucket/_sum/_count series) and reports summary statistics. It errors
// on the first malformed line.
func ParseExposition(s string) (*ExpositionStats, error) {
	stats := &ExpositionStats{Families: make(map[string]string), Values: make(map[string]float64)}
	bucketCounts := make(map[string]uint64) // series (sans le) -> +Inf cumulative count
	countValues := make(map[string]uint64)  // series -> _count value
	for lineNo, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				fields := strings.Fields(line) // "#", "TYPE", name, type
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					stats.Families[fields[2]] = fields[3]
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo+1, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		stats.Samples++
		if !nameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo+1, name)
		}
		series := name
		if labels != "" {
			series = name + "{" + labels + "}"
		}
		stats.Values[series] = value
		switch {
		case strings.HasSuffix(name, "_bucket"):
			key := strings.TrimSuffix(name, "_bucket") + "{" + stripLe(labels) + "}"
			bucketCounts[key] = uint64(value) // last bucket is +Inf, cumulative max
		case strings.HasSuffix(name, "_count"):
			key := strings.TrimSuffix(name, "_count") + "{" + labels + "}"
			countValues[key] = uint64(value)
		}
	}
	for key, n := range countValues {
		if inf, ok := bucketCounts[key]; ok && inf != n {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", key, inf, n)
		}
	}
	return stats, nil
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("no value in %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

// stripLe removes the le="..." pair from a label string.
func stripLe(labels string) string {
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}
