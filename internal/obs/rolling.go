package obs

import (
	"math"
	"sync"
	"time"
)

// Rolling is a rolling-window histogram: observations land in the same
// fixed log-scale buckets as Histogram, but old observations age out, so
// quantile estimates track the *recent* distribution instead of the whole
// process lifetime — the difference between "p99 right now" and "p99
// since boot" that a live serving path cares about.
//
// The window is divided into slices; each observation is counted in the
// slice holding its timestamp, and slices older than the window are
// zeroed lazily as the clock advances. Timestamps come from an injected
// Clock (obs.WallClock in servers, a fake in tests), so the quantile math
// itself is deterministic: the same observations at the same clock
// readings always produce the same estimates.
//
// All methods are safe for concurrent use and no-ops on a nil receiver,
// following the package's zero-cost-when-off contract.
type Rolling struct {
	mu     sync.Mutex
	bounds []float64     // ascending upper bounds; +Inf bucket implicit
	slice  time.Duration // duration of one slice
	start  time.Time     // clock reading at construction (slice 0 origin)
	clock  Clock
	// memlint:guard mu
	slices [][]uint64
	// memlint:guard mu
	counts []uint64 // per-slice observation totals
	// memlint:guard mu
	sums []float64
	// memlint:guard mu
	epoch int64 // absolute index of the newest populated slice
}

// NewRolling builds a rolling histogram over the given bucket bounds
// (e.g. LatencyBuckets) covering a window of `window`, resolved into
// `slices` slices. A nil clock uses WallClock.
func NewRolling(bounds []float64, window time.Duration, slices int, clock Clock) *Rolling {
	if len(bounds) == 0 {
		panic("obs: NewRolling needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: NewRolling bounds must be strictly ascending")
		}
	}
	if window <= 0 || slices < 1 {
		panic("obs: NewRolling needs window > 0 and slices >= 1")
	}
	if clock == nil {
		clock = WallClock
	}
	r := &Rolling{
		bounds: append([]float64(nil), bounds...),
		slices: make([][]uint64, slices),
		counts: make([]uint64, slices),
		sums:   make([]float64, slices),
		slice:  window / time.Duration(slices),
		clock:  clock,
		start:  clock(),
	}
	for i := range r.slices {
		r.slices[i] = make([]uint64, len(bounds)+1)
	}
	return r
}

// advance expires slices that fell out of the window. Callers hold r.mu.
func (r *Rolling) advance() {
	cur := int64(r.clock().Sub(r.start) / r.slice)
	if cur <= r.epoch {
		return // same slice, or a clock hiccup backwards: keep counting here
	}
	n := int64(len(r.slices))
	if cur-r.epoch >= n {
		for i := range r.slices {
			r.zero(i)
		}
	} else {
		for i := r.epoch + 1; i <= cur; i++ {
			r.zero(int(i % n))
		}
	}
	r.epoch = cur
}

func (r *Rolling) zero(i int) {
	for j := range r.slices[i] {
		r.slices[i][j] = 0
	}
	r.counts[i] = 0
	r.sums[i] = 0
}

// Observe records one value into the current slice. NaN observations are
// dropped, matching Histogram.
func (r *Rolling) Observe(v float64) {
	if r == nil || math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	r.advance()
	i := 0
	for i < len(r.bounds) && v > r.bounds[i] {
		i++
	}
	s := int(r.epoch % int64(len(r.slices)))
	r.slices[s][i]++
	r.counts[s]++
	r.sums[s] += v
	r.mu.Unlock()
}

// Count reports the number of observations currently inside the window
// (0 on nil).
func (r *Rolling) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	var total uint64
	for _, c := range r.counts {
		total += c
	}
	return total
}

// Rate reports observations per second over the window (0 on nil or when
// empty). The denominator is the full window length, so a burst shorter
// than the window reads as its window-averaged rate.
func (r *Rolling) Rate() float64 {
	if r == nil {
		return 0
	}
	//memlint:allow lockguard — only the slice header's length is read; it is fixed at construction
	window := r.slice * time.Duration(len(r.slices))
	return float64(r.Count()) / window.Seconds()
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observations in
// the window by merging the live slices and linearly interpolating inside
// the bucket holding the target rank — the same estimator Prometheus'
// histogram_quantile uses, computed on the fixed log-scale buckets. An
// empty window (or nil receiver) reports 0. Observations beyond the last
// bound are clamped to it, so the estimate never exceeds the bucket
// range.
func (r *Rolling) Quantile(q float64) float64 {
	if r == nil || math.IsNaN(q) || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	merged := make([]uint64, len(r.bounds)+1)
	var total uint64
	for _, s := range r.slices {
		for j, c := range s {
			merged[j] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var acc float64
	for i, c := range merged {
		next := acc + float64(c)
		if next >= rank && c > 0 {
			upper := r.bounds[len(r.bounds)-1]
			if i < len(r.bounds) {
				upper = r.bounds[i]
			}
			lower := 0.0
			if i > 0 {
				lower = r.bounds[i-1]
			}
			if i >= len(r.bounds) {
				return upper // +Inf bucket: clamp to the last bound
			}
			return lower + (upper-lower)*(rank-acc)/float64(c)
		}
		acc = next
	}
	return r.bounds[len(r.bounds)-1]
}

// Quantiles evaluates several quantiles. Each takes the lock and merges
// the slices independently; call sites scrape at human frequency, so
// clarity wins over a shared merge.
func (r *Rolling) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = r.Quantile(q)
	}
	return out
}

// LatencyBuckets covers 10 µs to ~5.2 s in powers of two: the range from
// a cached in-process prediction to a pathologically slow calibration,
// fine enough that interpolated p99 estimates resolve a 5 ms budget.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-5, 2, 20) }
