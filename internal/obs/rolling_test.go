package obs

import (
	"math"
	"testing"
	"time"
)

// manualClock is a settable Clock for deterministic window tests.
type manualClock struct{ now time.Time }

func (c *manualClock) clock() time.Time        { return c.now }
func (c *manualClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newManualClock() *manualClock             { return &manualClock{now: time.Unix(0, 0)} }
func newTestRolling(c *manualClock, bounds []float64) *Rolling {
	return NewRolling(bounds, 4*time.Second, 4, c.clock)
}

func TestRollingQuantileInterpolation(t *testing.T) {
	c := newManualClock()
	r := newTestRolling(c, []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 6, 100} {
		r.Observe(v)
	}
	if got := r.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// rank 2.5 lands in the (2,4] bucket holding one observation:
	// 2 + (4-2)*(2.5-2)/1 = 3.
	if got := r.Quantile(0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g, want 3", got)
	}
	// rank 5 lands in the +Inf bucket: clamped to the last bound.
	if got := r.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) = %g, want clamp to 8", got)
	}
	// Identical state must re-estimate identically (determinism).
	if a, b := r.Quantile(0.9), r.Quantile(0.9); a != b {
		t.Errorf("Quantile not deterministic: %g vs %g", a, b)
	}
}

func TestRollingWindowExpiry(t *testing.T) {
	c := newManualClock()
	r := newTestRolling(c, LatencyBuckets())
	r.Observe(0.001) // slice 0
	c.advance(1 * time.Second)
	r.Observe(0.002) // slice 1
	if got := r.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	// Jump to slice 4: slices 2, 3 and 0 expire; slice 1 survives.
	c.advance(3 * time.Second)
	if got := r.Count(); got != 1 {
		t.Errorf("after partial expiry Count = %d, want 1", got)
	}
	// Jump far past the window: everything expires.
	c.advance(time.Minute)
	if got := r.Count(); got != 0 {
		t.Errorf("after full expiry Count = %d, want 0", got)
	}
	if got := r.Quantile(0.99); got != 0 {
		t.Errorf("empty-window Quantile = %g, want 0", got)
	}
}

func TestRollingRate(t *testing.T) {
	c := newManualClock()
	r := newTestRolling(c, []float64{1})
	for i := 0; i < 40; i++ {
		r.Observe(0.5)
	}
	if got := r.Rate(); math.Abs(got-10) > 1e-12 { // 40 obs / 4 s window
		t.Errorf("Rate = %g, want 10", got)
	}
}

func TestRollingNilSafe(t *testing.T) {
	var r *Rolling
	r.Observe(1)
	if r.Count() != 0 || r.Rate() != 0 || r.Quantile(0.5) != 0 {
		t.Error("nil Rolling must report zeros")
	}
	if got := r.Quantiles(0.5, 0.99); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("nil Rolling Quantiles = %v, want zeros", got)
	}
}

func TestRollingRejectsBadInput(t *testing.T) {
	c := newManualClock()
	r := newTestRolling(c, []float64{1, 2})
	r.Observe(math.NaN())
	if got := r.Count(); got != 0 {
		t.Errorf("NaN observation counted: Count = %d", got)
	}
	if got := r.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %g, want 0", got)
	}
	for _, fn := range []func(){
		func() { NewRolling(nil, time.Second, 1, nil) },
		func() { NewRolling([]float64{2, 1}, time.Second, 1, nil) },
		func() { NewRolling([]float64{1}, 0, 1, nil) },
		func() { NewRolling([]float64{1}, time.Second, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid NewRolling arguments")
				}
			}()
			fn()
		}()
	}
}
