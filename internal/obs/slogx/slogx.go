// Package slogx is the serving path's structured, leveled request
// logging, built on log/slog. It exists for the same reason internal/obs
// wraps its instruments: the repo's hook contract says "nil means off,
// at zero cost", and *slog.Logger panics on nil, so the serving code
// threads a *slogx.Logger whose every method is inert on a nil receiver.
//
// Correlation follows the run-manifest model: a process mints one RunID
// at startup (random, since a serving process is not a reproducible
// artifact), stamps it on every line, and derives per-request ids from it
// with Logger.Request, so one request's lines — and the run manifest
// written at exit carrying the same id — join up across the fleet's log
// aggregation.
package slogx

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Logger is a nil-safe wrapper around *slog.Logger. The zero of
// *Logger (nil) drops everything without allocating.
type Logger struct {
	s   *slog.Logger
	seq *atomic.Uint64 // request-id allocator, shared by With-derived loggers
	run string
}

// New builds a JSON logger writing to w at the given level, stamped with
// a fresh RunID. Pass the result's RunID to the run manifest (Notes) so
// logs and manifest correlate.
func New(w io.Writer, level slog.Level) *Logger {
	return NewHandler(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewHandler wraps an arbitrary slog.Handler (tests inject handlers that
// strip timestamps for deterministic output). A nil handler yields a nil
// — inert — logger.
func NewHandler(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	run := NewRunID()
	return &Logger{
		s:   slog.New(h).With(slog.String("run_id", run)),
		seq: &atomic.Uint64{},
		run: run,
	}
}

// NewRunID mints a 64-bit random hex id. crypto/rand is deliberate: run
// ids must differ across concurrently started processes, and the
// determinism invariant only governs simulation artifacts, not identity
// minting.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "run-unseeded" // entropy exhaustion: still log, just without uniqueness
	}
	return hex.EncodeToString(b[:])
}

// RunID reports the logger's run correlation id ("" on nil).
func (l *Logger) RunID() string {
	if l == nil {
		return ""
	}
	return l.run
}

// ParseLevel maps the conventional level names onto slog levels,
// defaulting to info for unknown input.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// With returns a logger carrying extra attributes (nil stays nil).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...), seq: l.seq, run: l.run}
}

// Request returns a logger for one request, stamped with a correlation id
// derived from the run id and a process-wide sequence number
// ("<run_id>-000042"), plus the id itself for response headers.
func (l *Logger) Request() (*Logger, string) {
	if l == nil {
		return nil, ""
	}
	id := fmt.Sprintf("%s-%06d", l.run, l.seq.Add(1))
	return l.With(slog.String("req_id", id)), id
}

// Debug logs at debug level; a nil logger drops the line.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at info level; a nil logger drops the line.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at warn level; a nil logger drops the line.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at error level; a nil logger drops the line.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}

// Enabled reports whether the level would be emitted (false on nil), so
// hot paths can skip building expensive attribute sets.
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	return l.s.Enabled(context.Background(), level)
}

type ctxKey struct{}

// IntoContext attaches the logger to a context; FromContext recovers it.
// A request handler stores its Request-derived logger so downstream
// helpers log with the same correlation id.
func IntoContext(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the attached logger, or nil (inert) when absent.
func FromContext(ctx context.Context) *Logger {
	l, _ := ctx.Value(ctxKey{}).(*Logger)
	return l
}
