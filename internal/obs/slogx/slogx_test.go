package slogx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// newTestLogger builds a JSON logger without timestamps so assertions are
// deterministic.
func newTestLogger(buf *bytes.Buffer, level slog.Level) *Logger {
	h := slog.NewJSONHandler(buf, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return NewHandler(h)
}

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerStampsRunID(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, slog.LevelInfo)
	if l.RunID() == "" {
		t.Fatal("empty run id")
	}
	l.Info("serving", "addr", "localhost:0")
	l.Debug("dropped: below level")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug filtered)", len(lines))
	}
	if lines[0]["run_id"] != l.RunID() {
		t.Errorf("run_id = %v, want %s", lines[0]["run_id"], l.RunID())
	}
	if lines[0]["msg"] != "serving" || lines[0]["addr"] != "localhost:0" {
		t.Errorf("unexpected line: %v", lines[0])
	}
}

func TestRequestCorrelationIDs(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, slog.LevelInfo)
	r1, id1 := l.Request()
	r2, id2 := l.Request()
	if id1 == id2 {
		t.Fatalf("request ids collide: %s", id1)
	}
	if !strings.HasPrefix(id1, l.RunID()+"-") {
		t.Errorf("request id %q not derived from run id %q", id1, l.RunID())
	}
	r1.Info("handled", "code", 200)
	r2.Warn("rejected", "code", 429)
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["req_id"] != id1 || lines[1]["req_id"] != id2 {
		t.Errorf("req_id stamps wrong: %v / %v", lines[0]["req_id"], lines[1]["req_id"])
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("k", "v") != nil {
		t.Error("nil.With must stay nil")
	}
	if sub, id := l.Request(); sub != nil || id != "" {
		t.Error("nil.Request must stay nil")
	}
	if l.RunID() != "" || l.Enabled(slog.LevelError) {
		t.Error("nil logger must report empty state")
	}
	if NewHandler(nil) != nil {
		t.Error("NewHandler(nil) must be nil")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "WARN": slog.LevelWarn,
		"warning": slog.LevelWarn, "error": slog.LevelError, "bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, slog.LevelInfo)
	ctx := IntoContext(context.Background(), l)
	if FromContext(ctx) != l {
		t.Error("context round trip lost the logger")
	}
	if FromContext(context.Background()) != nil {
		t.Error("absent logger must come back nil")
	}
	if got := IntoContext(context.Background(), nil); got != context.Background() {
		t.Error("attaching nil must not wrap the context")
	}
}

func TestEnabledGatesLevels(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, slog.LevelWarn)
	if l.Enabled(slog.LevelInfo) {
		t.Error("info enabled at warn level")
	}
	if !l.Enabled(slog.LevelError) {
		t.Error("error disabled at warn level")
	}
}
