package obs

import "time"

// Timing is the result of a finished Span: how long the phase took on the
// wall clock and in simulated (virtual) time.
type Timing struct {
	Name string `json:"name"`
	// Wall is the elapsed wall-clock time in seconds.
	Wall float64 `json:"wall_seconds"`
	// Virtual is the elapsed simulated time in seconds (0 when the span
	// has no virtual clock).
	Virtual float64 `json:"virtual_seconds"`
}

// Span measures one phase of work (a calibration, a placement sweep, a
// simulation run). Spans track wall time always and virtual time when
// given a simulated clock; End reports both. A nil Span is inert, so
// span-based accounting follows the same zero-cost-when-off contract as
// the instruments.
//
// Wall-clock durations are nondeterministic; they are only folded into a
// registry when the caller explicitly routes them there with ObserveWall,
// keeping metric exports byte-reproducible by default.
type Span struct {
	name      string
	wallStart time.Time
	virtClock func() float64
	virtStart float64
	wallHist  *Histogram
	virtHist  *Histogram
}

// StartSpan begins a wall-clock span.
func StartSpan(name string) *Span {
	return &Span{name: name, wallStart: time.Now()}
}

// WithVirtualClock attaches a simulated clock (e.g. engine.Sim.Now) read
// at call time and again at End.
func (s *Span) WithVirtualClock(clock func() float64) *Span {
	if s == nil || clock == nil {
		return s
	}
	s.virtClock = clock
	s.virtStart = clock()
	return s
}

// ObserveVirtual routes the span's virtual duration into h at End.
func (s *Span) ObserveVirtual(h *Histogram) *Span {
	if s != nil {
		s.virtHist = h
	}
	return s
}

// ObserveWall routes the span's wall duration into h at End. Note this
// makes the registry's content timing-dependent; don't combine it with
// byte-reproducible exports.
func (s *Span) ObserveWall(h *Histogram) *Span {
	if s != nil {
		s.wallHist = h
	}
	return s
}

// End stops the span, feeds the attached histograms, and reports the
// timing. Ending a nil span returns a zero Timing.
func (s *Span) End() Timing {
	if s == nil {
		return Timing{}
	}
	t := Timing{Name: s.name, Wall: time.Since(s.wallStart).Seconds()}
	if s.virtClock != nil {
		t.Virtual = s.virtClock() - s.virtStart
	}
	s.wallHist.Observe(t.Wall)
	s.virtHist.Observe(t.Virtual)
	return t
}
