package obs

import "time"

// Clock supplies wall timestamps to spans. Injecting one makes
// span-based artifacts byte-reproducible: two identical runs that share
// a clock emit identical timings.
type Clock func() time.Time

// WallClock reads the operating-system clock. It is the repo's single
// sanctioned wall-clock read (memlint's determinism check allowlists
// exactly this function); every other component takes a Clock — or a
// simulated-seconds func — from its caller.
func WallClock() time.Time { return time.Now() }

// SimClock adapts a simulated-seconds clock (e.g. engine.Sim.Now) into a
// Clock anchored at the Unix epoch. Spans started with it report
// deterministic engine time as their "wall" duration, so manifests and
// traces recorded under -trace stay byte-stable run to run.
func SimClock(now func() float64) Clock {
	return func() time.Time {
		return time.Unix(0, 0).Add(time.Duration(now() * float64(time.Second)))
	}
}

// Timing is the result of a finished Span: how long the phase took on the
// wall clock and in simulated (virtual) time, plus the span's identity so
// nested timings can be reassembled into a tree.
type Timing struct {
	Name string `json:"name"`
	// ID and Parent locate the span in its tree. IDs are allocated
	// sequentially within one root span's tree (the root is 1), so the
	// same code path produces the same ids on every run. Parent is 0
	// for roots.
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Wall is the elapsed wall-clock time in seconds.
	Wall float64 `json:"wall_seconds"`
	// Virtual is the elapsed simulated time in seconds (0 when the span
	// has no virtual clock).
	Virtual float64 `json:"virtual_seconds"`
}

// Span measures one phase of work (a calibration, a placement sweep, a
// simulation run). Spans track wall time always and virtual time when
// given a simulated clock; End reports both. A nil Span is inert, so
// span-based accounting follows the same zero-cost-when-off contract as
// the instruments.
//
// Spans nest: Child opens a sub-span whose Timing carries this span's id
// as its parent, and ids are handed out sequentially from the root's
// allocator — the identity scheme shared with internal/prof's causal
// spans (obs.SpanID), so wall-clock phase timings and simulated causal
// spans can be correlated in one report.
//
// Wall-clock durations are nondeterministic; they are only folded into a
// registry when the caller explicitly routes them there with ObserveWall,
// keeping metric exports byte-reproducible by default.
type Span struct {
	name      string
	id        SpanID
	parent    SpanID
	seq       *SpanID // tree-wide id allocator, owned by the root
	clock     Clock   // wall timestamp source, inherited by children
	wallStart time.Time
	virtClock func() float64
	virtStart float64
	wallHist  *Histogram
	virtHist  *Histogram
}

// StartSpan begins a root wall-clock span (id 1 of a fresh tree) on the
// operating-system clock.
func StartSpan(name string) *Span {
	return StartSpanClock(name, WallClock)
}

// StartSpanClock begins a root span reading wall timestamps from clock
// (nil falls back to WallClock). Deterministic runs pass SimClock so the
// resulting timings are byte-stable.
func StartSpanClock(name string, clock Clock) *Span {
	if clock == nil {
		clock = WallClock
	}
	seq := SpanID(1)
	return &Span{name: name, id: 1, seq: &seq, clock: clock, wallStart: clock()}
}

// Child begins a nested span under s, inheriting its wall and virtual
// clocks. The child's id is the next id of s's tree, deterministic in
// call order. A nil receiver returns a nil (inert) span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	*s.seq++
	c := &Span{name: name, id: *s.seq, parent: s.id, seq: s.seq, clock: s.clock, wallStart: s.clock()}
	if s.virtClock != nil {
		c.virtClock = s.virtClock
		c.virtStart = s.virtClock()
	}
	return c
}

// ID reports the span's id within its tree (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID reports the parent span's id (0 for roots and nil spans).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return 0
	}
	return s.parent
}

// WithVirtualClock attaches a simulated clock (e.g. engine.Sim.Now) read
// at call time and again at End.
func (s *Span) WithVirtualClock(clock func() float64) *Span {
	if s == nil || clock == nil {
		return s
	}
	s.virtClock = clock
	s.virtStart = clock()
	return s
}

// ObserveVirtual routes the span's virtual duration into h at End.
func (s *Span) ObserveVirtual(h *Histogram) *Span {
	if s != nil {
		s.virtHist = h
	}
	return s
}

// ObserveWall routes the span's wall duration into h at End. Note this
// makes the registry's content timing-dependent; don't combine it with
// byte-reproducible exports.
func (s *Span) ObserveWall(h *Histogram) *Span {
	if s != nil {
		s.wallHist = h
	}
	return s
}

// End stops the span, feeds the attached histograms, and reports the
// timing. Ending a nil span returns a zero Timing.
func (s *Span) End() Timing {
	if s == nil {
		return Timing{}
	}
	t := Timing{Name: s.name, ID: s.id, Parent: s.parent, Wall: s.clock().Sub(s.wallStart).Seconds()}
	if s.virtClock != nil {
		t.Virtual = s.virtClock() - s.virtStart
	}
	s.wallHist.Observe(t.Wall)
	s.virtHist.Observe(t.Virtual)
	return t
}
