package obs

import (
	"encoding/json"
	"testing"
)

// TestNestedSpansDeterministic is the regression test for span nesting:
// ids must be allocated purely by call order within a tree, parents must
// be recorded, and the resulting Timings must marshal identically across
// two identical runs (ignoring wall time, which is nondeterministic).
func TestNestedSpansDeterministic(t *testing.T) {
	build := func() []Timing {
		virtual := 0.0
		clock := func() float64 { return virtual }
		root := StartSpan("run").WithVirtualClock(clock)
		calib := root.Child("calibrate")
		virtual = 1.5
		fitA := calib.Child("fit-alpha")
		virtual = 2.0
		tA := fitA.End()
		tCalib := calib.End()
		sweep := root.Child("sweep")
		virtual = 3.25
		tSweep := sweep.End()
		tRoot := root.End()
		return []Timing{tRoot, tCalib, tA, tSweep}
	}

	a, b := build(), build()
	for i := range a {
		a[i].Wall, b[i].Wall = 0, 0 // wall time is nondeterministic by design
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("nested span exports differ across identical runs:\n%s\nvs\n%s", ja, jb)
	}

	want := []struct {
		name    string
		id      SpanID
		parent  SpanID
		virtual float64
	}{
		{"run", 1, 0, 3.25},
		{"calibrate", 2, 1, 2.0},
		{"fit-alpha", 3, 2, 0.5},
		{"sweep", 4, 1, 1.25},
	}
	for i, w := range want {
		got := a[i]
		if got.Name != w.name || got.ID != w.id || got.Parent != w.parent || got.Virtual != w.virtual {
			t.Errorf("timing[%d] = {%s id=%d parent=%d virt=%g}, want {%s id=%d parent=%d virt=%g}",
				i, got.Name, got.ID, got.Parent, got.Virtual, w.name, w.id, w.parent, w.virtual)
		}
	}
}

// TestNilSpanChild: children of nil spans stay inert.
func TestNilSpanChild(t *testing.T) {
	var s *Span
	c := s.Child("sub")
	if c != nil {
		t.Fatalf("nil.Child() = %v, want nil", c)
	}
	if got := c.End(); got != (Timing{}) {
		t.Errorf("nil child End() = %+v, want zero", got)
	}
	if c.ID() != 0 || c.ParentID() != 0 {
		t.Errorf("nil span ids = (%d,%d), want (0,0)", c.ID(), c.ParentID())
	}
}

// TestSimClockSpansByteStable runs the same span tree twice on a
// simulated clock (the deterministic engine time): with the wall clock
// injected, even the Wall fields are identical, so span-bearing artifacts
// written under -trace are byte-stable run to run.
func TestSimClockSpansByteStable(t *testing.T) {
	build := func() []byte {
		sim := 0.0
		root := StartSpanClock("run", SimClock(func() float64 { return sim }))
		work := root.Child("work")
		sim = 2.5
		tWork := work.End()
		sim = 4.0
		tRoot := root.End()
		data, err := json.Marshal([]Timing{tRoot, tWork})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Errorf("sim-clock span trees differ:\n%s\nvs\n%s", a, b)
	}
	var timings []Timing
	if err := json.Unmarshal(a, &timings); err != nil {
		t.Fatal(err)
	}
	if timings[0].Wall != 4.0 || timings[1].Wall != 2.5 {
		t.Errorf("wall durations = %g, %g; want 4 and 2.5 simulated seconds", timings[0].Wall, timings[1].Wall)
	}
}

// TestStartSpanClockNilFallsBack pins the default: a nil clock means the
// operating-system wall clock, and durations stay non-negative.
func TestStartSpanClockNilFallsBack(t *testing.T) {
	sp := StartSpanClock("run", nil)
	if tm := sp.End(); tm.Wall < 0 {
		t.Errorf("wall duration = %g, want >= 0", tm.Wall)
	}
}
