package obs

// SpanID identifies one causal span. IDs are allocated sequentially by
// whoever records the spans (a profiler, a span tree), so two identical
// simulation runs number their spans identically and span-bearing exports
// stay byte-deterministic. 0 is the nil span: "no parent" / "no span".
type SpanID int64

// SpanAttrs carries the resource attribution of a causal span: which
// machine and rank it belongs to, and — for memory-flow spans — which
// stream it tracks and which memory-system links that stream traverses.
// The zero value means "no attribution"; Rank uses -1 for "not a rank-
// scoped span" because rank 0 is a real rank.
type SpanAttrs struct {
	// Machine is the simulated machine id (0 for single-machine runs).
	Machine int
	// Rank is the MPI rank, or -1 when the span is not rank-scoped.
	Rank int
	// Flow is the flow id for flow spans (0 otherwise; real ids start
	// at 1).
	Flow int
	// Stream is the stream kind ("compute" or "comm") for flow and
	// transfer spans, "" otherwise.
	Stream string
	// Node is the NUMA node holding the span's data (flow/transfer
	// spans), -1 when not node-scoped.
	Node int
	// Links names the memory-system links the span's stream occupies
	// (e.g. "node0", "xlink", "pcie"), in traversal order.
	Links []string
}

// NoRank returns attrs for spans that are not rank- or node-scoped.
func NoRank() SpanAttrs { return SpanAttrs{Rank: -1, Node: -1} }

// SpanRecorder receives causal span lifecycle events from the simulation
// layers: the engine's flow manager (memory flows), simnet (fabric
// transfers) and MPI (operations, barriers, compute phases, ranks). A nil
// SpanRecorder field means "spans off"; every producer guards with one
// nil check, so the unprofiled hot path stays allocation-free.
//
// Times are simulated seconds. Implementations must be deterministic:
// BeginSpan is required to hand out IDs purely by call order, which the
// cooperative engine makes reproducible.
type SpanRecorder interface {
	// BeginSpan opens a span under parent (0 = root) and returns its id.
	BeginSpan(parent SpanID, name, category string, at float64, attrs SpanAttrs) SpanID
	// EndSpan closes a span. Ending an unknown or already-ended span is
	// a no-op.
	EndSpan(id SpanID, at float64)
}
