// Package plot renders small ASCII line charts — enough to eyeball the
// paper's figures in a terminal: measured points as markers, model
// predictions as lines, two Y series (communications and computations)
// per subplot, like the paper's dual-axis panels.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve: Y values indexed by X = 1..len(Y).
type Series struct {
	Name string
	Y    []float64
	// Marker draws the series points ('o', '+', …).
	Marker byte
}

// Chart is a fixed-size character canvas with axes.
type Chart struct {
	Title  string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 12)
	series []Series
	yMax   float64 // 0 = auto
}

// New creates a chart.
func New(title string) *Chart {
	return &Chart{Title: title, Width: 60, Height: 12}
}

// YMax fixes the Y scale (0 reverts to auto).
func (c *Chart) YMax(v float64) *Chart { c.yMax = v; return c }

// Add appends a series. Series with nil/empty Y are ignored at render.
func (c *Chart) Add(s Series) *Chart {
	c.series = append(c.series, s)
	return c
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w < 16 {
		w = 16
	}
	if h < 4 {
		h = 4
	}
	nMax, yMax := 0, c.yMax
	for _, s := range c.series {
		if len(s.Y) > nMax {
			nMax = len(s.Y)
		}
		if c.yMax == 0 {
			for _, v := range s.Y {
				if v > yMax {
					yMax = v
				}
			}
		}
	}
	if nMax == 0 || yMax <= 0 {
		return c.Title + "\n(no data)\n"
	}
	yMax *= 1.05 // headroom

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// X position of point i (0-based) spread over the width.
	xCol := func(i int) int {
		if nMax == 1 {
			return 0
		}
		return i * (w - 1) / (nMax - 1)
	}
	yRow := func(v float64) int {
		r := h - 1 - int(math.Round(v/yMax*float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	for _, s := range c.series {
		if len(s.Y) == 0 {
			continue
		}
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		prevCol, prevRow := -1, -1
		for i, v := range s.Y {
			col, row := xCol(i), yRow(v)
			// Connect with a crude vertical interpolation so lines
			// read as lines.
			if prevCol >= 0 {
				for cc := prevCol + 1; cc < col; cc++ {
					t := float64(cc-prevCol) / float64(col-prevCol)
					rr := int(math.Round(float64(prevRow) + t*float64(row-prevRow)))
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			grid[row][col] = marker
			prevCol, prevRow = col, row
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", yMax)
		case h - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		case (h - 1) / 2:
			label = fmt.Sprintf("%7.1f ", yMax/2)
		}
		fmt.Fprintf(&b, "%s│%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "        └%s\n", strings.Repeat("─", w))
	fmt.Fprintf(&b, "         n=1%sn=%d\n", strings.Repeat(" ", max(1, w-8-len(fmt.Sprint(nMax)))), nMax)
	var legend []string
	for _, s := range c.series {
		if len(s.Y) == 0 {
			continue
		}
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "         %s\n", strings.Join(legend, "   "))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
