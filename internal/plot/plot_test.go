package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	ch := New("test chart").
		Add(Series{Name: "measured", Y: []float64{1, 2, 3, 4, 5}, Marker: 'o'}).
		Add(Series{Name: "predicted", Y: []float64{1, 2, 3, 4, 4.5}, Marker: '+'})
	out := ch.Render()
	for _, want := range []string{"test chart", "o measured", "+ predicted", "└", "n=1", "n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Markers present on canvas.
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("markers not drawn")
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := New("empty").Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart must say so: %q", out)
	}
	if out := New("zeros").Add(Series{Y: []float64{0, 0}}).Render(); !strings.Contains(out, "no data") {
		t.Errorf("all-zero chart must say so: %q", out)
	}
}

func TestRenderScale(t *testing.T) {
	// A fixed YMax changes the axis label.
	out := New("scaled").YMax(100).Add(Series{Y: []float64{10, 20}}).Render()
	if !strings.Contains(out, "105.0") { // 100 × 1.05 headroom
		t.Errorf("fixed scale not applied:\n%s", out)
	}
}

func TestMonotoneSeriesDrawsMonotone(t *testing.T) {
	// The marker of the max value must sit on a higher row than the min.
	out := New("").Add(Series{Y: []float64{1, 10}, Marker: 'x'}).Render()
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "x") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("markers not found on distinct rows:\n%s", out)
	}
}

func TestTinyDimensionsClamped(t *testing.T) {
	ch := New("tiny")
	ch.Width, ch.Height = 1, 1
	out := ch.Add(Series{Y: []float64{1, 2, 3}}).Render()
	if !strings.Contains(out, "└") {
		t.Error("clamped chart must still render axes")
	}
}

func TestSingularPoint(t *testing.T) {
	out := New("one").Add(Series{Y: []float64{5}, Marker: '#'}).Render()
	if !strings.Contains(out, "#") {
		t.Error("single point must render")
	}
}
