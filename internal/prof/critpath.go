package prof

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"memcontention/internal/obs"
	"memcontention/internal/trace"
)

// spanNode is one reconstructed causal span.
type spanNode struct {
	id       obs.SpanID
	parent   obs.SpanID
	name     string
	cat      string
	attrs    obs.SpanAttrs
	begin    float64
	end      float64
	ended    bool
	children []*spanNode
}

// SpanTree is the causal span forest of a recorded run: rank roots with
// their MPI operations, fabric transfers and memory flows nested below.
type SpanTree struct {
	nodes map[obs.SpanID]*spanNode
	roots []*spanNode
	// Makespan is the latest event time seen while building.
	Makespan float64
}

// BuildSpanTree reconstructs the span forest from a recorded event
// stream. Spans still open at the end of the trace are closed at the
// makespan (they bounded the run). Duplicate span ids are an error — they
// mean a corrupt stitch.
func BuildSpanTree(events []trace.Event) (*SpanTree, error) {
	st := &SpanTree{nodes: make(map[obs.SpanID]*spanNode)}
	for i := range events {
		ev := &events[i]
		if ev.At > st.Makespan {
			st.Makespan = ev.At
		}
		switch ev.Kind {
		case trace.SpanBegin:
			if _, dup := st.nodes[ev.Span]; dup {
				return nil, fmt.Errorf("prof: duplicate span id %d at t=%v", ev.Span, ev.At)
			}
			n := &spanNode{
				id: ev.Span, parent: ev.Parent,
				name: ev.Label, cat: ev.Cat, attrs: ev.Attrs,
				begin: ev.At,
			}
			st.nodes[ev.Span] = n
			if p := st.nodes[ev.Parent]; p != nil {
				p.children = append(p.children, n)
			} else {
				st.roots = append(st.roots, n)
			}
		case trace.SpanEnd:
			if n := st.nodes[ev.Span]; n != nil && !n.ended {
				n.end, n.ended = ev.At, true
			}
		}
	}
	for _, n := range st.nodes {
		if !n.ended {
			n.end = st.Makespan
		}
	}
	return st, nil
}

// SpanCount reports the number of reconstructed spans.
func (st *SpanTree) SpanCount() int { return len(st.nodes) }

// Step is one link of the critical path: the span that bounded progress
// over [From, To]. Steps are contiguous and in time order; their union is
// the full interval from the critical root's begin to the makespan.
type Step struct {
	Span     obs.SpanID
	Name     string
	Cat      string
	Attrs    obs.SpanAttrs
	From, To float64
}

// Duration is the critical-path time attributed to this step.
func (s *Step) Duration() float64 { return s.To - s.From }

const cpEps = 1e-12

// CriticalPath walks the span forest backwards from the latest-ending
// root: at every point in time it descends into the child that was still
// running closest to the frontier, attributing uncovered time to the
// enclosing span itself (its own latency or wait). The result is the
// chain of waits bounding the makespan, in forward time order.
func (st *SpanTree) CriticalPath() []Step {
	root := st.criticalRoot()
	if root == nil {
		return nil
	}
	var steps []Step
	st.walk(root, root.end, &steps)
	// The walk emits steps backwards in time; present them forwards.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return steps
}

// criticalRoot picks the latest-ending root (smallest id on ties, for
// determinism).
func (st *SpanTree) criticalRoot() *spanNode {
	var root *spanNode
	for _, r := range st.roots {
		if root == nil || r.end > root.end+cpEps ||
			(math.Abs(r.end-root.end) <= cpEps && r.id < root.id) {
			root = r
		}
	}
	return root
}

// walk attributes the interval [n.begin, t] inside span n: descend into
// the child whose activity reaches closest to the frontier t, credit the
// gap above it to n itself, and continue below the child's begin with
// n's earlier children.
func (st *SpanTree) walk(n *spanNode, t float64, steps *[]Step) {
	for t > n.begin+cpEps {
		var best *spanNode
		bestEnd := math.Inf(-1)
		for _, c := range n.children {
			if c.begin >= t-cpEps {
				continue // starts at/after the frontier: not on this path
			}
			ce := math.Min(c.end, t)
			switch {
			case ce > bestEnd+cpEps:
				best, bestEnd = c, ce
			case ce > bestEnd-cpEps && best != nil &&
				(c.begin > best.begin || (c.begin == best.begin && c.id > best.id)):
				// Tie on end: prefer the later-started (innermost) child.
				best, bestEnd = c, ce
			}
		}
		if best == nil {
			*steps = append(*steps, Step{Span: n.id, Name: n.name, Cat: n.cat, Attrs: n.attrs, From: n.begin, To: t})
			return
		}
		if t-bestEnd > cpEps {
			// Nothing below n covered (bestEnd, t]: n's own time.
			*steps = append(*steps, Step{Span: n.id, Name: n.name, Cat: n.cat, Attrs: n.attrs, From: bestEnd, To: t})
		}
		st.walk(best, bestEnd, steps)
		t = best.begin
	}
}

// Attribution is one category's share of the critical path.
type Attribution struct {
	// Key is the span category, refined by stream kind where present
	// (e.g. "flow/comm", "transfer/comm", "mpi", "rank").
	Key     string
	Seconds float64
	// Share is the fraction of the critical path's total length.
	Share float64
}

// AttributeSteps groups critical-path time by span category (refined by
// stream kind), sorted by descending share — the "where did the makespan
// go" summary.
func AttributeSteps(steps []Step) []Attribution {
	if len(steps) == 0 {
		return nil
	}
	var total float64
	byKey := make(map[string]float64)
	for i := range steps {
		key := steps[i].Cat
		if key == "" {
			key = "(uncategorised)"
		}
		if s := steps[i].Attrs.Stream; s != "" {
			key += "/" + s
		}
		d := steps[i].Duration()
		byKey[key] += d
		total += d
	}
	out := make([]Attribution, 0, len(byKey))
	for key, sec := range byKey {
		a := Attribution{Key: key, Seconds: sec}
		if total > 0 {
			a.Share = sec / total
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// FormatCriticalPath renders the path as an aligned table, one step per
// line in time order.
func FormatCriticalPath(steps []Step) string {
	if len(steps) == 0 {
		return "(no spans: run without a profiler attached?)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %12s %10s  %-10s %s\n", "from (ms)", "to (ms)", "dur (ms)", "category", "span")
	for i := range steps {
		s := &steps[i]
		detail := s.Name
		if len(s.Attrs.Links) > 0 {
			detail += " [" + strings.Join(s.Attrs.Links, ",") + "]"
		}
		if s.Attrs.Rank >= 0 {
			detail += fmt.Sprintf(" (rank %d)", s.Attrs.Rank)
		}
		fmt.Fprintf(&sb, "%12.6f %12.6f %10.6f  %-10s %s\n",
			s.From*1e3, s.To*1e3, s.Duration()*1e3, s.Cat, detail)
	}
	return sb.String()
}

// FormatAttribution renders the per-category critical-path shares.
func FormatAttribution(steps []Step) string {
	attrs := AttributeSteps(steps)
	if len(attrs) == 0 {
		return "(no critical path)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %8s\n", "category", "time (ms)", "share")
	for _, a := range attrs {
		fmt.Fprintf(&sb, "%-16s %12.6f %7.1f%%\n", a.Key, a.Seconds*1e3, a.Share*100)
	}
	return sb.String()
}
