package prof

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"memcontention/internal/engine"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/mpi"
	"memcontention/internal/obs"
	"memcontention/internal/simnet"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
	"memcontention/internal/units"
)

// profiledClusterRun executes a two-machine halo-style exchange (send
// 8 MiB while the receiver computes) with the profiler attached to every
// layer, and returns the profiler and the simulated makespan.
func profiledClusterRun(t testing.TB, platform string) (*Profiler, float64) {
	t.Helper()
	plat, err := topology.ByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := memsys.ProfileFor(platform)
	if err != nil {
		t.Fatal(err)
	}
	sim := engine.NewSim()
	fabric, err := simnet.NewFabric(sim, simnet.WireRateFor(plat.NIC.Tech, plat.NIC.PCIeGen), 1.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	var machines []*simnet.Machine
	for i := 0; i < 2; i++ {
		m, err := simnet.NewMachine(sim, i, plat, hw)
		if err != nil {
			t.Fatal(err)
		}
		if err := fabric.Attach(m); err != nil {
			t.Fatal(err)
		}
		m.Flows.SetObserver(p)
		m.Flows.SetSpanRecorder(p)
		machines = append(machines, m)
	}
	fabric.SetSpanRecorder(p)
	world, err := mpi.NewWorld(sim, fabric, machines, 1)
	if err != nil {
		t.Fatal(err)
	}
	world.SetSpanRecorder(p)
	world.Launch(func(c *mpi.Ctx) {
		const tag = 7
		if c.Rank() == 0 {
			if err := c.Send(1, tag, 8*units.MiB, 0, nil); err != nil {
				t.Error(err)
			}
		} else {
			req, err := c.Irecv(0, tag, 8*units.MiB, 0)
			if err != nil {
				t.Error(err)
				return
			}
			a := kernels.Assignment{Kernel: kernels.New(kernels.Triad), Cores: []topology.CoreID{0, 1}, Node: 0}
			if _, err := c.Compute(a, 4*units.MiB); err != nil {
				t.Error(err)
			}
			if _, err := c.Wait(req); err != nil {
				t.Error(err)
			}
		}
		c.Barrier()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return p, sim.Now()
}

// TestCriticalPathCluster: the walk must cover the whole makespan with
// contiguous steps and descend through the MPI and memory layers.
func TestCriticalPathCluster(t *testing.T) {
	p, makespan := profiledClusterRun(t, "henri")
	st, err := BuildSpanTree(p.Events())
	if err != nil {
		t.Fatal(err)
	}
	if st.SpanCount() < 8 {
		t.Fatalf("span count = %d, want rank/op/transfer/flow spans", st.SpanCount())
	}
	steps := st.CriticalPath()
	if len(steps) < 2 {
		t.Fatalf("critical path too short: %+v", steps)
	}
	const eps = 1e-9
	if steps[0].From > eps {
		t.Errorf("path starts at %v, want 0", steps[0].From)
	}
	if math.Abs(steps[len(steps)-1].To-makespan) > eps {
		t.Errorf("path ends at %v, makespan %v", steps[len(steps)-1].To, makespan)
	}
	for i := 1; i < len(steps); i++ {
		if math.Abs(steps[i].From-steps[i-1].To) > eps {
			t.Errorf("gap between step %d (to %v) and %d (from %v)", i-1, steps[i-1].To, i, steps[i].From)
		}
	}
	cats := map[string]bool{}
	for i := range steps {
		if steps[i].Duration() < -eps {
			t.Errorf("negative step: %+v", steps[i])
		}
		cats[steps[i].Cat] = true
	}
	// Spans only appear with their exclusive time: the rank and MPI-op
	// spans are fully covered by the transfer below them, so the path
	// must descend to the data layers — the wire latency (transfer self
	// time) and the receive-side DMA flow that actually bound the run.
	if !cats["transfer"] {
		t.Errorf("critical path misses the transfer latency: %v", cats)
	}
	if !cats["flow"] {
		t.Errorf("critical path never reaches a memory flow: %v", cats)
	}
	attrs := AttributeSteps(steps)
	var share float64
	for _, a := range attrs {
		share += a.Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("attribution shares sum to %v", share)
	}
	if out := FormatCriticalPath(steps); !strings.Contains(out, "flow") {
		t.Errorf("critical path rendering:\n%s", out)
	}
	if out := FormatAttribution(steps); !strings.Contains(out, "%") {
		t.Errorf("attribution rendering:\n%s", out)
	}
}

// TestProfilerDeterminism: two identical runs must produce byte-identical
// JSONL traces and Perfetto exports.
func TestProfilerDeterminism(t *testing.T) {
	p1, _ := profiledClusterRun(t, "henri")
	p2, _ := profiledClusterRun(t, "henri")
	var j1, j2 bytes.Buffer
	if err := trace.WriteEventsJSONL(&j1, p1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteEventsJSONL(&j2, p2.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSONL traces of identical runs differ")
	}
	var f1, f2 bytes.Buffer
	if err := WritePerfetto(&f1, p1.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&f2, p2.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Bytes(), f2.Bytes()) {
		t.Error("Perfetto exports of identical runs differ")
	}
}

// TestTraceRoundTripAnalyses: analyses on a loaded trace must match the
// live recording (memprof works on files).
func TestTraceRoundTripAnalyses(t *testing.T) {
	p, _ := profiledClusterRun(t, "henri")
	var buf bytes.Buffer
	if err := trace.WriteEventsJSONL(&buf, p.Events()); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live, err := BuildSpanTree(p.Events())
	if err != nil {
		t.Fatal(err)
	}
	disk, err := BuildSpanTree(loaded)
	if err != nil {
		t.Fatal(err)
	}
	a, b := live.CriticalPath(), disk.CriticalPath()
	if len(a) != len(b) {
		t.Fatalf("critical path lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Span != b[i].Span || a[i].From != b[i].From || a[i].To != b[i].To {
			t.Errorf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestIngestAdvancesSpanIDs(t *testing.T) {
	p := New()
	p.Ingest([]trace.Event{
		{At: 0, Kind: trace.SpanBegin, Span: 5, Label: "old", Cat: "rank", Attrs: obs.NoRank()},
		{At: 1, Kind: trace.SpanEnd, Span: 5},
	})
	if id := p.BeginSpan(0, "new", "rank", 2, obs.NoRank()); id != 6 {
		t.Errorf("span id after ingest = %d, want 6", id)
	}
}

func TestEmptyTree(t *testing.T) {
	st, err := BuildSpanTree(nil)
	if err != nil {
		t.Fatal(err)
	}
	if steps := st.CriticalPath(); steps != nil {
		t.Errorf("empty tree path = %+v", steps)
	}
	if out := FormatCriticalPath(nil); !strings.Contains(out, "no spans") {
		t.Errorf("empty rendering: %q", out)
	}
}
