package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"memcontention/internal/obs"
	"memcontention/internal/trace"
)

// pfEvent is one Chrome trace-event (the JSON format Perfetto loads).
// Field order is fixed by the struct, so exports are byte-deterministic
// and golden-testable.
type pfEvent struct {
	Name string   `json:"name,omitempty"`
	Cat  string   `json:"cat,omitempty"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	S    string   `json:"s,omitempty"`
	Args *pfArgs  `json:"args,omitempty"`
}

// pfArgs carries span attribution (and counter values) into the trace
// viewer's args pane.
type pfArgs struct {
	Name    string   `json:"name,omitempty"` // metadata events
	Span    int64    `json:"span,omitempty"`
	Rank    *int     `json:"rank,omitempty"`
	Node    *int     `json:"node,omitempty"`
	Flow    int      `json:"flow,omitempty"`
	Stream  string   `json:"stream,omitempty"`
	Links   []string `json:"links,omitempty"`
	Compute *float64 `json:"compute,omitempty"` // counter events
	Comm    *float64 `json:"comm,omitempty"`
}

// lane places a span inside its process track. Lanes hold a stack of
// active intervals: a span fits a lane when it nests inside the lane's
// innermost open interval (or the lane is free), which is exactly the
// containment Perfetto needs to render complete ("X") events as a flame.
type lane struct {
	stack []float64 // open interval end times, innermost last
	first string    // name of the first span placed, used as thread name
}

// laneSet assigns spans of one pid to lanes greedily.
type laneSet struct {
	lanes []*lane
}

func (ls *laneSet) place(begin, end float64, name string) int {
	for i, l := range ls.lanes {
		for len(l.stack) > 0 && l.stack[len(l.stack)-1] <= begin+cpEps {
			l.stack = l.stack[:len(l.stack)-1]
		}
		if len(l.stack) == 0 || end <= l.stack[len(l.stack)-1]+cpEps {
			l.stack = append(l.stack, end)
			return i
		}
	}
	ls.lanes = append(ls.lanes, &lane{stack: []float64{end}, first: name})
	return len(ls.lanes) - 1
}

// WritePerfetto exports a recorded event stream as Chrome trace-event
// JSON, loadable directly in ui.perfetto.dev or chrome://tracing. Spans
// become complete ("X") slices grouped per machine (pid) in greedily
// packed nesting lanes (tid); rate changes become per-machine "C"
// counters split compute vs comm; marks, faults and checkpoints become
// global instants. Timestamps are microseconds of simulated time. The
// output is deterministic: one event per line, fixed field order.
func WritePerfetto(w io.Writer, events []trace.Event) error {
	st, err := BuildSpanTree(events)
	if err != nil {
		return err
	}

	// Flow kind lookup for the bandwidth counters.
	kinds := make(map[flowKey]string)
	for i := range events {
		if events[i].Kind == trace.FlowStart {
			kinds[flowKey{events[i].Machine, events[i].FlowID}] = events[i].Stream.Kind.String()
		}
	}

	// Assign lanes per pid, walking spans in begin order (the event order).
	type placed struct {
		n   *spanNode
		tid int
	}
	lanes := make(map[int]*laneSet)
	spanLane := make(map[obs.SpanID]placed)
	pids := make(map[int]bool)
	var spanOrder []obs.SpanID
	for i := range events {
		if events[i].Kind != trace.SpanBegin {
			continue
		}
		n := st.nodes[events[i].Span]
		pid := n.attrs.Machine
		pids[pid] = true
		ls := lanes[pid]
		if ls == nil {
			ls = &laneSet{}
			lanes[pid] = ls
		}
		tid := ls.place(n.begin, n.end, n.name) + 1 // tid 0 is the counter track
		spanLane[n.id] = placed{n, tid}
		spanOrder = append(spanOrder, n.id)
	}

	var out []pfEvent

	// Metadata: name every process and lane, in sorted order.
	sortedPids := make([]int, 0, len(pids))
	for pid := range pids {
		sortedPids = append(sortedPids, pid)
	}
	sort.Ints(sortedPids)
	for _, pid := range sortedPids {
		out = append(out, pfEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: &pfArgs{Name: fmt.Sprintf("machine %d", pid)},
		})
		for i, l := range lanes[pid].lanes {
			out = append(out, pfEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: &pfArgs{Name: l.first},
			})
		}
	}

	// Span slices, in begin order.
	for _, id := range spanOrder {
		p := spanLane[id]
		dur := (p.n.end - p.n.begin) * 1e6
		args := &pfArgs{Span: int64(p.n.id), Stream: p.n.attrs.Stream, Links: p.n.attrs.Links, Flow: p.n.attrs.Flow}
		if p.n.attrs.Rank >= 0 {
			r := p.n.attrs.Rank
			args.Rank = &r
		}
		if p.n.attrs.Node >= 0 {
			nd := p.n.attrs.Node
			args.Node = &nd
		}
		out = append(out, pfEvent{
			Name: p.n.name, Cat: p.n.cat, Ph: "X",
			Ts: p.n.begin * 1e6, Dur: &dur,
			Pid: p.n.attrs.Machine, Tid: p.tid, Args: args,
		})
	}

	// Counters and instants, in event order.
	cur := make(map[int][]trace.FlowRate)
	counter := func(machine int, at float64) pfEvent {
		var comp, comm float64
		for _, fr := range cur[machine] {
			if kinds[flowKey{machine, fr.Flow}] == "comm" {
				comm += fr.GBps
			} else {
				comp += fr.GBps
			}
		}
		return pfEvent{
			Name: "bandwidth (GB/s)", Ph: "C", Ts: at * 1e6, Pid: machine,
			Args: &pfArgs{Compute: &comp, Comm: &comm},
		}
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case trace.RateChange:
			cur[ev.Machine] = ev.Rates
			out = append(out, counter(ev.Machine, ev.At))
		case trace.FlowEnd:
			cur[ev.Machine] = dropRate(cur[ev.Machine], ev.FlowID)
			out = append(out, counter(ev.Machine, ev.At))
		case trace.Instant:
			pe := pfEvent{
				Name: ev.Label, Cat: ev.Cat, Ph: "i",
				Ts: ev.At * 1e6, Pid: ev.Attrs.Machine, S: "t",
				Args: &pfArgs{Span: int64(ev.Span), Stream: ev.Attrs.Stream, Links: ev.Attrs.Links},
			}
			if p, ok := spanLane[ev.Span]; ok {
				pe.Pid = p.n.attrs.Machine
				pe.Tid = p.tid
			}
			out = append(out, pe)
		case trace.Mark, trace.Fault, trace.Checkpoint:
			out = append(out, pfEvent{
				Name: ev.Label, Cat: ev.Kind.String(), Ph: "i",
				Ts: ev.At * 1e6, S: "g",
			})
		}
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range out {
		line, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}
