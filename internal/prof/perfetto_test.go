package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPerfettoExport: the export must be valid Chrome trace-event JSON
// with well-formed slices, counters and metadata.
func TestPerfettoExport(t *testing.T) {
	p, _ := profiledClusterRun(t, "henri")
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, p.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("X event %q without valid dur", ev.Name)
			}
			if ev.Tid < 1 {
				t.Errorf("X event %q on counter track tid %d", ev.Name, ev.Tid)
			}
			pids[ev.Pid] = true
		case "M", "C", "i":
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if counts["X"] < 8 {
		t.Errorf("only %d slices exported", counts["X"])
	}
	if counts["C"] == 0 {
		t.Error("no bandwidth counters exported")
	}
	if counts["M"] == 0 {
		t.Error("no metadata exported")
	}
	if !pids[0] || !pids[1] {
		t.Errorf("slices must span both machines, got pids %v", pids)
	}
	// Both machine tracks are named.
	if !strings.Contains(buf.String(), `"name":"machine 0"`) ||
		!strings.Contains(buf.String(), `"name":"machine 1"`) {
		t.Error("process_name metadata missing")
	}
}

// TestPerfettoLaneNesting: every slice on a lane must either nest inside
// or be disjoint from every other slice on the same lane — the invariant
// that makes the flame rendering correct.
func TestPerfettoLaneNesting(t *testing.T) {
	p, _ := profiledClusterRun(t, "henri")
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, p.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Ts  float64  `json:"ts"`
			Dur *float64 `json:"dur"`
			Pid int      `json:"pid"`
			Tid int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	type iv struct{ lo, hi float64 }
	byLane := map[[2]int][]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		byLane[[2]int{ev.Pid, ev.Tid}] = append(byLane[[2]int{ev.Pid, ev.Tid}], iv{ev.Ts, ev.Ts + *ev.Dur})
	}
	const eps = 1e-6 // µs
	for lane, ivs := range byLane {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				disjoint := a.hi <= b.lo+eps || b.hi <= a.lo+eps
				nested := (a.lo >= b.lo-eps && a.hi <= b.hi+eps) || (b.lo >= a.lo-eps && b.hi <= a.hi+eps)
				if !disjoint && !nested {
					t.Fatalf("lane %v: slices [%v,%v] and [%v,%v] partially overlap", lane, a.lo, a.hi, b.lo, b.hi)
				}
			}
		}
	}
}

// TestPerfettoByteStable exports the same event stream twice; the
// Chrome-trace JSON must be byte-identical (lane assignment, counter
// tracks and metadata all derive deterministically from the events).
func TestPerfettoByteStable(t *testing.T) {
	p, _ := profiledClusterRun(t, "henri")
	events := p.Events()
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two Perfetto exports of the same events differ")
	}
}
