// Package prof is the contention attribution profiler: it turns the raw
// event stream of a simulated run into causal spans (rank → MPI operation
// → fabric transfer → memory flow), per-link bandwidth-share timelines,
// and a critical-path report naming the chain of waits that bounds the
// makespan — the simulated counterpart of the interference analyses the
// paper's authors performed on their testbed traces.
//
// A Profiler is installed on a cluster (or a bare flow manager) as both
// the engine.FlowObserver and the obs.SpanRecorder; it funnels everything
// into one trace.Recorder so flow events and spans share a single
// time-ordered timeline that round-trips through the JSONL format. All
// analyses (Timeline, SpanTree) work on plain []trace.Event, so they run
// equally on a live recording or on a trace file loaded from disk.
package prof

import (
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/trace"
)

// Profiler records causal spans and flow events into a trace.Recorder.
// It implements engine.FlowObserver, obs.SpanRecorder and the fault
// layer's Marker interface, so one Profiler is the only hook a cluster
// needs. Span ids are allocated sequentially in call order; with the
// deterministic engine two identical runs produce byte-identical traces.
type Profiler struct {
	rec  *trace.Recorder
	next obs.SpanID
}

// New creates a profiler recording into a fresh recorder.
func New() *Profiler { return Attach(trace.NewRecorder()) }

// Attach creates a profiler recording into rec (nil allocates a fresh
// recorder). Sharing a recorder lets spans interleave with events other
// producers append.
func Attach(rec *trace.Recorder) *Profiler {
	if rec == nil {
		rec = trace.NewRecorder()
	}
	return &Profiler{rec: rec}
}

// Recorder returns the underlying recorder.
func (p *Profiler) Recorder() *trace.Recorder {
	if p == nil {
		return nil
	}
	return p.rec
}

// Events returns the recorded timeline.
func (p *Profiler) Events() []trace.Event {
	if p == nil {
		return nil
	}
	return p.rec.Events()
}

// BeginSpan implements obs.SpanRecorder.
func (p *Profiler) BeginSpan(parent obs.SpanID, name, category string, at float64, attrs obs.SpanAttrs) obs.SpanID {
	if p == nil {
		return 0
	}
	p.next++
	p.rec.Append(trace.Event{
		At: at, Kind: trace.SpanBegin,
		Span: p.next, Parent: parent,
		Label: name, Cat: category, Attrs: attrs,
	})
	return p.next
}

// EndSpan implements obs.SpanRecorder.
func (p *Profiler) EndSpan(id obs.SpanID, at float64) {
	if p == nil || id == 0 {
		return
	}
	p.rec.Append(trace.Event{At: at, Kind: trace.SpanEnd, Span: id})
}

// Instant records a point-in-time annotation attributed to span (0 for a
// free-standing instant) carrying resource attribution — e.g. "this wait
// was bound by the xlink".
func (p *Profiler) Instant(span obs.SpanID, name, category string, at float64, attrs obs.SpanAttrs) {
	if p == nil {
		return
	}
	p.rec.Append(trace.Event{
		At: at, Kind: trace.Instant,
		Span: span, Label: name, Cat: category, Attrs: attrs,
	})
}

// FlowStarted implements engine.FlowObserver.
func (p *Profiler) FlowStarted(machine, id int, stream memsys.Stream, bytes, at float64) {
	if p == nil {
		return
	}
	p.rec.FlowStarted(machine, id, stream, bytes, at)
}

// FlowFinished implements engine.FlowObserver.
func (p *Profiler) FlowFinished(machine, id int, at, avgRate float64) {
	if p == nil {
		return
	}
	p.rec.FlowFinished(machine, id, at, avgRate)
}

// RatesResolved implements engine.FlowObserver.
func (p *Profiler) RatesResolved(machine int, at float64, rates map[int]float64) {
	if p == nil {
		return
	}
	p.rec.RatesResolved(machine, at, rates)
}

// MarkAt records a user annotation.
func (p *Profiler) MarkAt(at float64, label string) {
	if p == nil {
		return
	}
	p.rec.MarkAt(at, label)
}

// FaultAt implements the fault layer's Marker interface.
func (p *Profiler) FaultAt(at float64, label string) {
	if p == nil {
		return
	}
	p.rec.FaultAt(at, label)
}

// CheckpointAt records a graceful-interruption marker.
func (p *Profiler) CheckpointAt(at float64, label string) {
	if p == nil {
		return
	}
	p.rec.CheckpointAt(at, label)
}

// Ingest replays a previously recorded stream (e.g. one campaign unit's
// span file on resume) and advances the span-id allocator past every span
// it contains, so spans recorded afterwards never collide with the
// stitched ones and the merged trace stays consistent.
func (p *Profiler) Ingest(events []trace.Event) {
	if p == nil {
		return
	}
	p.rec.Ingest(events)
	for _, ev := range events {
		if ev.Span > p.next {
			p.next = ev.Span
		}
	}
}
