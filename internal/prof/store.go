package prof

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"memcontention/internal/atomicio"
	"memcontention/internal/trace"
)

// SpanStore persists per-unit trace slices next to a campaign journal
// (conventionally at "<journal>.spans/"). Each campaign unit saves the
// events it recorded under its journal key; on resume the cached unit's
// slice is loaded and re-ingested instead of re-run, so a stitched trace
// is byte-identical to an uninterrupted recording. File names are
// content-addressed from the key, which embeds the configuration — a
// changed configuration never resurrects a stale span file.
type SpanStore struct {
	dir string
}

// NewSpanStore opens (creating on first Save) a span store rooted at dir.
func NewSpanStore(dir string) *SpanStore { return &SpanStore{dir: dir} }

// Dir reports the store's root directory.
func (s *SpanStore) Dir() string { return s.dir }

// path maps a journal key to its span file.
func (s *SpanStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:8])+".jsonl")
}

// Save writes one unit's event slice atomically and durably. Saving a nil
// or empty slice records an empty file, so resume distinguishes "unit
// recorded nothing" from "no span file".
func (s *SpanStore) Save(key string, events []trace.Event) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("prof: span store: %w", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteEventsJSONL(&buf, events); err != nil {
		return fmt.Errorf("prof: span store %q: %w", key, err)
	}
	if err := atomicio.WriteFile(s.path(key), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("prof: span store %q: %w", key, err)
	}
	return nil
}

// Load reads one unit's event slice; ok is false when the unit has no
// span file (e.g. it ran before profiling was enabled).
func (s *SpanStore) Load(key string) (events []trace.Event, ok bool, err error) {
	f, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("prof: span store %q: %w", key, err)
	}
	defer f.Close()
	events, err = trace.ReadJSONL(f)
	if err != nil {
		return nil, false, fmt.Errorf("prof: span store %q: %w", key, err)
	}
	return events, true, nil
}
