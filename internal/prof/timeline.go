package prof

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"memcontention/internal/trace"
	"memcontention/internal/units"
)

// FlowInfo is one flow's reconstructed life: identity, placement, the
// links it occupied, and both bandwidth accounts — the engine-reported
// lifetime average and the integral of the applied rates sampled at every
// rate change. On a complete timeline the two agree to float roundoff;
// the calibration tests pin them together to 1e-9.
type FlowInfo struct {
	Machine int
	ID      int
	// Kind is the stream kind ("compute" or "comm").
	Kind string
	// Node is the NUMA node holding the flow's data.
	Node int
	// Links are the memory-system links the flow occupied. Exact when the
	// trace carries flow spans (profiled runs); synthesised from kind and
	// node otherwise, in which case inter-socket links are unknown.
	Links []string
	// Bytes is the transfer size.
	Bytes float64
	// Start and End are simulated seconds; End is 0 while unfinished.
	Start, End float64
	Finished   bool
	// AvgRate is the engine-reported lifetime average, GB/s.
	AvgRate float64
	// MovedGB is the integral of the flow's applied rates over time, in
	// decimal gigabytes.
	MovedGB float64
}

// IntegralRate is the flow's average bandwidth computed from the rate
// timeline alone (GB/s), the cross-check against AvgRate.
func (fi *FlowInfo) IntegralRate() float64 {
	if !fi.Finished || fi.End <= fi.Start {
		return 0
	}
	return fi.MovedGB / (fi.End - fi.Start)
}

// Segment is one constant-rate interval on one machine: between From and
// To every listed flow ran at its given applied rate.
type Segment struct {
	Machine  int
	From, To float64
	Rates    []trace.FlowRate
}

// LinkUtil aggregates one memory-system link's traffic over the run,
// split by stream kind — the "who occupied this resource" account behind
// the contention attribution summary.
type LinkUtil struct {
	Machine int
	Link    string
	// ComputeGB and CommGB are decimal gigabytes moved across the link by
	// each stream kind.
	ComputeGB, CommGB float64
	// Busy is the time (seconds) the link carried any traffic.
	Busy float64
	// Peak is the highest aggregate rate observed on the link, GB/s.
	Peak float64
}

// TotalGB is the link's total traffic.
func (lu *LinkUtil) TotalGB() float64 { return lu.ComputeGB + lu.CommGB }

// Timeline is the bandwidth-share reconstruction of a recorded run: every
// flow's life and rate integral, and the piecewise-constant rate segments
// the fluid solver produced.
type Timeline struct {
	// Flows in deterministic (machine, id) order.
	Flows []*FlowInfo
	// Segments in event order (time order per machine).
	Segments []Segment
	// Makespan is the last event's time.
	Makespan float64

	flows map[flowKey]*FlowInfo
}

type flowKey struct{ machine, id int }

// BuildTimeline reconstructs the bandwidth-share timeline from a recorded
// event stream. It refuses truncated recordings: attribution on a
// timeline with dropped rate changes would silently under-count.
func BuildTimeline(events []trace.Event) (*Timeline, error) {
	tl := &Timeline{flows: make(map[flowKey]*FlowInfo)}
	cur := make(map[int][]trace.FlowRate) // machine → applied rates in force
	lastAt := make(map[int]float64)
	advance := func(machine int, to float64) {
		from := lastAt[machine]
		rates := cur[machine]
		if to > from && len(rates) > 0 {
			for _, fr := range rates {
				if fi := tl.flows[flowKey{machine, fr.Flow}]; fi != nil {
					fi.MovedGB += fr.GBps * (to - from)
				}
			}
			tl.Segments = append(tl.Segments, Segment{Machine: machine, From: from, To: to, Rates: rates})
		}
		lastAt[machine] = to
	}
	for i := range events {
		ev := &events[i]
		if ev.At > tl.Makespan {
			tl.Makespan = ev.At
		}
		switch ev.Kind {
		case trace.Mark:
			if ev.Label == trace.TruncatedLabel {
				return nil, fmt.Errorf("prof: trace is truncated (MaxEvents dropped rate changes); refusing bandwidth attribution")
			}
		case trace.FlowStart:
			advance(ev.Machine, ev.At)
			fi := &FlowInfo{
				Machine: ev.Machine,
				ID:      ev.FlowID,
				Kind:    ev.Stream.Kind.String(),
				Node:    int(ev.Stream.Node),
				Links:   synthLinks(ev.Stream.Kind.String(), int(ev.Stream.Node)),
				Bytes:   ev.Bytes,
				Start:   ev.At,
			}
			tl.flows[flowKey{ev.Machine, ev.FlowID}] = fi
			tl.Flows = append(tl.Flows, fi)
		case trace.FlowEnd:
			advance(ev.Machine, ev.At)
			if fi := tl.flows[flowKey{ev.Machine, ev.FlowID}]; fi != nil {
				fi.End, fi.Finished, fi.AvgRate = ev.At, true, ev.AvgRate
			}
			cur[ev.Machine] = dropRate(cur[ev.Machine], ev.FlowID)
		case trace.RateChange:
			advance(ev.Machine, ev.At)
			cur[ev.Machine] = ev.Rates
		case trace.SpanBegin:
			// Flow spans carry the solver's exact link attribution.
			if ev.Cat == "flow" && ev.Attrs.Flow > 0 {
				if fi := tl.flows[flowKey{ev.Attrs.Machine, ev.Attrs.Flow}]; fi != nil && len(ev.Attrs.Links) > 0 {
					fi.Links = ev.Attrs.Links
				}
			}
		}
	}
	sort.Slice(tl.Flows, func(i, j int) bool {
		a, b := tl.Flows[i], tl.Flows[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.ID < b.ID
	})
	return tl, nil
}

// synthLinks derives a flow's links from its kind and node when the trace
// has no flow spans. Inter-socket (xlink) traversal cannot be inferred
// without the platform, so unprofiled traces under-attribute it.
func synthLinks(kind string, node int) []string {
	if kind == "comm" {
		return []string{"pcie", fmt.Sprintf("node%d", node)}
	}
	return []string{fmt.Sprintf("node%d", node)}
}

// dropRate returns rates without the given flow (copying, never mutating
// the shared slice).
func dropRate(rates []trace.FlowRate, flow int) []trace.FlowRate {
	for i := range rates {
		if rates[i].Flow == flow {
			out := make([]trace.FlowRate, 0, len(rates)-1)
			out = append(out, rates[:i]...)
			return append(out, rates[i+1:]...)
		}
	}
	return rates
}

// Flow returns one flow's reconstruction (nil when unknown).
func (tl *Timeline) Flow(machine, id int) *FlowInfo { return tl.flows[flowKey{machine, id}] }

// KindGB sums the decimal gigabytes moved by one stream kind on one
// machine, from the rate integrals.
func (tl *Timeline) KindGB(machine int, kind string) float64 {
	var total float64
	for _, fi := range tl.Flows {
		if fi.Machine == machine && fi.Kind == kind {
			total += fi.MovedGB
		}
	}
	return total
}

// LinkUtilization aggregates traffic per memory-system link, in
// deterministic (machine, link) order.
func (tl *Timeline) LinkUtilization() []LinkUtil {
	type linkKey struct {
		machine int
		link    string
	}
	agg := make(map[linkKey]*LinkUtil)
	for _, seg := range tl.Segments {
		dt := seg.To - seg.From
		perLink := make(map[string]float64) // aggregate rate this segment
		for _, fr := range seg.Rates {
			fi := tl.flows[flowKey{seg.Machine, fr.Flow}]
			if fi == nil || fr.GBps <= 0 {
				continue
			}
			for _, link := range fi.Links {
				k := linkKey{seg.Machine, link}
				lu := agg[k]
				if lu == nil {
					lu = &LinkUtil{Machine: seg.Machine, Link: link}
					agg[k] = lu
				}
				if fi.Kind == "comm" {
					lu.CommGB += fr.GBps * dt
				} else {
					lu.ComputeGB += fr.GBps * dt
				}
				perLink[link] += fr.GBps
			}
		}
		for link, rate := range perLink {
			lu := agg[linkKey{seg.Machine, link}]
			lu.Busy += dt
			if rate > lu.Peak {
				lu.Peak = rate
			}
		}
	}
	out := make([]LinkUtil, 0, len(agg))
	for _, lu := range agg {
		out = append(out, *lu)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Machine != out[j].Machine {
			return out[i].Machine < out[j].Machine
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// TopContended returns the n busiest links by total traffic (ties broken
// by machine then link name for determinism).
func (tl *Timeline) TopContended(n int) []LinkUtil {
	links := tl.LinkUtilization()
	sort.SliceStable(links, func(i, j int) bool {
		return links[i].TotalGB() > links[j].TotalGB()
	})
	if n > 0 && len(links) > n {
		links = links[:n]
	}
	return links
}

// ShareChart renders the per-link bandwidth-share timeline as text: one
// row per (machine, link), time bucketed into width columns. Each column
// shows what occupied the link: '=' compute only, '~' comm only, '#'
// both (contention), ' ' idle.
func (tl *Timeline) ShareChart(width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Makespan <= 0 || len(tl.Segments) == 0 {
		return "(no rate segments)\n"
	}
	type row struct {
		machine int
		link    string
		comp    []float64
		comm    []float64
	}
	rows := make(map[string]*row)
	for _, seg := range tl.Segments {
		for _, fr := range seg.Rates {
			fi := tl.flows[flowKey{seg.Machine, fr.Flow}]
			if fi == nil || fr.GBps <= 0 {
				continue
			}
			for _, link := range fi.Links {
				key := fmt.Sprintf("m%d %s", seg.Machine, link)
				r := rows[key]
				if r == nil {
					r = &row{machine: seg.Machine, link: link, comp: make([]float64, width), comm: make([]float64, width)}
					rows[key] = r
				}
				lo := int(seg.From / tl.Makespan * float64(width))
				hi := int(seg.To / tl.Makespan * float64(width))
				if hi >= width {
					hi = width - 1
				}
				for b := lo; b <= hi; b++ {
					if fi.Kind == "comm" {
						r.comm[b] += fr.GBps
					} else {
						r.comp[b] += fr.GBps
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := rows[keys[i]], rows[keys[j]]
		if a.machine != b.machine {
			return a.machine < b.machine
		}
		return a.link < b.link
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s |%s| (%.3f ms, '=' compute  '~' comm  '#' both)\n",
		"link", strings.Repeat("-", width), tl.Makespan*1e3)
	for _, k := range keys {
		r := rows[k]
		cells := make([]byte, width)
		for b := 0; b < width; b++ {
			switch {
			case r.comp[b] > 0 && r.comm[b] > 0:
				cells[b] = '#'
			case r.comp[b] > 0:
				cells[b] = '='
			case r.comm[b] > 0:
				cells[b] = '~'
			default:
				cells[b] = ' '
			}
		}
		fmt.Fprintf(&sb, "%-14s |%s|\n", k, cells)
	}
	return sb.String()
}

// FormatStreams renders the per-stream attribution summary: every flow
// with its placement, the links it occupied, and both bandwidth accounts
// — the engine's lifetime average next to the timeline integral, whose
// agreement (|Δ| ≤ 1e-9 relative) is the profiler's fidelity contract.
func FormatStreams(tl *Timeline) string {
	if len(tl.Flows) == 0 {
		return "(no flows)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-5s %-8s %-4s %-18s %10s %12s %12s %10s\n",
		"mach", "flow", "stream", "node", "links", "bytes", "engine GB/s", "integral", "Δ rel")
	for _, fi := range tl.Flows {
		delta := 0.0
		if fi.AvgRate > 0 {
			delta = math.Abs(fi.IntegralRate()-fi.AvgRate) / fi.AvgRate
		}
		fmt.Fprintf(&sb, "%-4d %-5d %-8s %-4d %-18s %10s %12.6f %12.6f %10.2e\n",
			fi.Machine, fi.ID, fi.Kind, fi.Node, strings.Join(fi.Links, ","),
			units.ByteSize(fi.Bytes).String(), fi.AvgRate, fi.IntegralRate(), delta)
	}
	return sb.String()
}

// FormatUtilization renders the per-resource utilization table with the
// top contended links first.
func FormatUtilization(tl *Timeline) string {
	links := tl.TopContended(0)
	if len(links) == 0 {
		return "(no link traffic)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-8s %12s %12s %12s %9s %10s\n",
		"mach", "link", "compute", "comm", "total", "busy", "peak")
	for _, lu := range links {
		busyPct := 0.0
		if tl.Makespan > 0 {
			busyPct = lu.Busy / tl.Makespan * 100
		}
		fmt.Fprintf(&sb, "%-4d %-8s %12s %12s %12s %8.1f%% %7.2f GB/s\n",
			lu.Machine, lu.Link,
			units.ByteSize(lu.ComputeGB*units.BytesPerGB).String(),
			units.ByteSize(lu.CommGB*units.BytesPerGB).String(),
			units.ByteSize(lu.TotalGB()*units.BytesPerGB).String(),
			busyPct, lu.Peak)
	}
	return sb.String()
}
