package prof

import (
	"math"
	"strings"
	"testing"

	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
	"memcontention/internal/units"
)

// calibrationRun replays one §III calibration scenario — a single comm
// stream against a single compute stream on one machine, with the
// profiler attached — and returns the profiler.
func calibrationRun(t *testing.T, platform string, compNode, commNode int) *Profiler {
	t.Helper()
	plat, err := topology.ByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := memsys.ProfileFor(platform)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(plat, hw)
	if err != nil {
		t.Fatal(err)
	}
	sim := engine.NewSim()
	flows := engine.NewFlows(sim, sys)
	p := New()
	flows.SetObserver(p)
	flows.SetSpanRecorder(p)
	sim.Spawn("main", func(pr *engine.Proc) {
		comm := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: topology.NodeID(commNode)}, 32*units.MiB)
		comp := flows.Start(memsys.Stream{Kind: memsys.KindCompute, Core: 0, Node: topology.NodeID(compNode), Demand: 5}, 64*units.MiB)
		comm.Wait(pr)
		comp.Wait(pr)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// TestCalibrationIntegrals replays the paper's §III calibration
// placements (all-local and all-remote, on two Table I platforms) and
// asserts that per-stream bandwidth integrals from the reconstructed
// timeline equal the simulator's reported averages to 1e-9 — the
// fidelity contract between the profiler and the fluid solver.
func TestCalibrationIntegrals(t *testing.T) {
	cases := []struct {
		name               string
		platform           string
		compNode, commNode int
		wantXlink          bool
	}{
		{"henri/all-local", "henri", 0, 0, false},
		{"henri/all-remote", "henri", 1, 1, true},
		{"dahu/all-local", "dahu", 0, 0, false},
		{"dahu/all-remote", "dahu", 1, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := calibrationRun(t, tc.platform, tc.compNode, tc.commNode)
			tl, err := BuildTimeline(p.Events())
			if err != nil {
				t.Fatal(err)
			}
			if len(tl.Flows) != 2 {
				t.Fatalf("flows = %d, want 2", len(tl.Flows))
			}
			for _, fi := range tl.Flows {
				if !fi.Finished {
					t.Fatalf("flow %d unfinished", fi.ID)
				}
				if !relClose(fi.IntegralRate(), fi.AvgRate, 1e-9) {
					t.Errorf("%s flow %d: timeline integral %v GB/s vs engine average %v GB/s",
						fi.Kind, fi.ID, fi.IntegralRate(), fi.AvgRate)
				}
				if !relClose(fi.MovedGB*units.BytesPerGB, fi.Bytes, 1e-9) {
					t.Errorf("%s flow %d: integrated %v bytes vs %v started",
						fi.Kind, fi.ID, fi.MovedGB*units.BytesPerGB, fi.Bytes)
				}
			}
			// The flow spans carry the solver's exact link attribution.
			comp := tl.Flows[1]
			if comp.Kind != "compute" {
				comp = tl.Flows[0]
			}
			hasXlink := false
			for _, l := range comp.Links {
				if l == "xlink" {
					hasXlink = true
				}
			}
			if hasXlink != tc.wantXlink {
				t.Errorf("compute flow links = %v, want xlink=%v", comp.Links, tc.wantXlink)
			}
		})
	}
}

func TestTimelineRejectsTruncated(t *testing.T) {
	rec := trace.NewRecorder()
	rec.MaxEvents = 1
	for i := 0; i < 4; i++ {
		rec.RatesResolved(0, float64(i), map[int]float64{1: 2})
	}
	if _, err := BuildTimeline(rec.Events()); err == nil {
		t.Fatal("truncated trace must be refused")
	}
}

func TestLinkUtilizationAndChart(t *testing.T) {
	p := calibrationRun(t, "henri", 0, 0)
	tl, err := BuildTimeline(p.Events())
	if err != nil {
		t.Fatal(err)
	}
	links := tl.LinkUtilization()
	var node0 *LinkUtil
	for i := range links {
		if links[i].Link == "node0" {
			node0 = &links[i]
		}
	}
	if node0 == nil {
		t.Fatalf("no node0 utilization in %+v", links)
	}
	// Both streams hit node 0: 32 MiB comm + 64 MiB compute.
	if !relClose(node0.CommGB*units.BytesPerGB, float64(32*units.MiB), 1e-9) {
		t.Errorf("node0 comm = %v GB", node0.CommGB)
	}
	if !relClose(node0.ComputeGB*units.BytesPerGB, float64(64*units.MiB), 1e-9) {
		t.Errorf("node0 compute = %v GB", node0.ComputeGB)
	}
	if node0.Busy <= 0 || node0.Busy > tl.Makespan {
		t.Errorf("node0 busy = %v (makespan %v)", node0.Busy, tl.Makespan)
	}
	if node0.Peak <= 0 {
		t.Errorf("node0 peak = %v", node0.Peak)
	}
	top := tl.TopContended(1)
	if len(top) != 1 || top[0].Link != "node0" {
		t.Errorf("top contended = %+v, want node0", top)
	}
	chart := tl.ShareChart(60)
	if !strings.Contains(chart, "node0") || !strings.Contains(chart, "#") {
		t.Errorf("share chart missing contended node0 row:\n%s", chart)
	}
	if out := FormatUtilization(tl); !strings.Contains(out, "node0") || !strings.Contains(out, "GB/s") {
		t.Errorf("utilization table:\n%s", out)
	}
}
