// Package report assembles the complete per-platform evaluation document:
// calibrated parameters, error statistics, the ablation study and compact
// ASCII views of the figures — everything a reader needs to audit one
// platform's reproduction in a single text artifact.
package report

import (
	"fmt"
	"io"

	"memcontention/internal/bench"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/plot"
)

// Write renders the full report for one evaluated platform. The runner
// must be configured identically to the one that produced the result (it
// is used to re-run the ablation).
func Write(w io.Writer, res *eval.PlatformResult, runner *bench.Runner) error {
	fmt.Fprintf(w, "================================================================\n")
	fmt.Fprintf(w, "PLATFORM REPORT — %s\n", res.Platform)
	fmt.Fprintf(w, "================================================================\n\n")

	if err := export.ParamsTable("Calibrated model (§III-A parameters)", res.Model).WriteText(w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nPrediction errors (Table II row):\n")
	e := res.Errors
	errTable := export.NewTable("",
		"", "on Samples", "on non-Samples", "all")
	errTable.AddRow("Communications", export.Pct(e.CommSamples), export.Pct(e.CommNonSamples), export.Pct(e.CommAll))
	errTable.AddRow("Computations", export.Pct(e.CompSamples), export.Pct(e.CompNonSamples), export.Pct(e.CompAll))
	errTable.AddRow("Average", "", "", export.Pct(e.Average))
	if err := errTable.WriteText(w); err != nil {
		return err
	}

	if runner != nil {
		rows, err := eval.Ablation(runner)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := eval.AblationTable(res.Platform, rows).WriteText(w); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\nPer-placement errors:\n")
	plTable := export.NewTable("", "placement", "sample", "comm MAPE", "comp MAPE")
	for _, pr := range res.Placements {
		plTable.AddRow(pr.Placement.String(), fmt.Sprint(pr.IsSample),
			export.Pct(pr.CommMAPE), export.Pct(pr.CompMAPE))
	}
	if err := plTable.WriteText(w); err != nil {
		return err
	}

	// Compact figure: the two calibration samples as ASCII charts.
	fig := eval.FigureFor(eval.FigureNameFor(res.Platform), res)
	for _, sp := range fig.Subplots {
		if !sp.IsSample {
			continue
		}
		var commPar, predComm, compPar, predComp []float64
		for _, p := range sp.Points {
			commPar = append(commPar, p.CommPar)
			predComm = append(predComm, p.PredComm)
			compPar = append(compPar, p.CompPar)
			predComp = append(predComp, p.PredComp)
		}
		fmt.Fprintln(w)
		comm := plot.New(fmt.Sprintf("%v — communications, measured vs model (GB/s)", sp.Placement)).
			Add(plot.Series{Name: "measured", Y: commPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComm, Marker: '+'})
		if _, err := io.WriteString(w, comm.Render()); err != nil {
			return err
		}
		comp := plot.New(fmt.Sprintf("%v — computations, measured vs model (GB/s)", sp.Placement)).
			Add(plot.Series{Name: "measured", Y: compPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComp, Marker: '+'})
		if _, err := io.WriteString(w, comp.Render()); err != nil {
			return err
		}
	}
	return nil
}
