package report

import (
	"strings"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/eval"
	"memcontention/internal/topology"
)

func TestWriteReport(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.EvaluateRunner(runner)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, res, runner); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"PLATFORM REPORT — henri",
		"Calibrated model",
		"N_par_max",
		"Communications",
		"threshold-model", // ablation included
		"comp@0/comm@0",
		"measured",
		"model",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Exactly the two calibration samples are charted: 2 samples × 2
	// charts each.
	if got := strings.Count(out, "measured vs model"); got != 4 {
		t.Errorf("report has %d contention charts, want 4", got)
	}
}

func TestWriteReportWithoutRunner(t *testing.T) {
	res, err := eval.EvaluatePlatform(bench.Config{Platform: topology.Occigen(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, res, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "threshold-model") {
		t.Error("nil runner must skip the ablation section")
	}
}

// TestReportByteStable renders the same evaluated platform twice; the
// report (tables, charts, ablations) must be byte-identical.
func TestReportByteStable(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.EvaluateRunner(runner)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := Write(&a, res, runner); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, res, runner); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same report differ")
	}
}
