// Package rng provides the deterministic pseudo-random streams used to
// simulate run-to-run measurement variability.
//
// Every noise source in the simulator is derived from a SplitMix64 stream
// keyed by (seed, label), so that adding a new experiment or reordering
// benchmark runs never perturbs the noise of existing ones. This is the
// property that makes the whole reproduction bit-for-bit stable.
package rng

import "math"

// splitmix64 advances the state and returns the next 64-bit value.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (the standard SplitMix64 finalizer).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a label into a 64-bit key (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stream is a deterministic random stream. The zero value is a valid stream
// keyed by seed 0 and the empty label.
type Stream struct {
	state uint64
}

// New returns a stream keyed by seed and label. Streams with different
// labels are statistically independent.
func New(seed uint64, label string) *Stream {
	s := &Stream{state: seed ^ hashString(label)}
	// Warm up so that closely related keys diverge immediately.
	splitmix64(&s.state)
	return s
}

// Derive returns a child stream keyed by an extra label, leaving s untouched.
func (s *Stream) Derive(label string) *Stream {
	c := &Stream{state: s.state ^ hashString(label)}
	splitmix64(&c.state)
	return c
}

// Uint64 returns the next raw 64-bit value.
func (s *Stream) Uint64() uint64 { return splitmix64(&s.state) }

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns a standard normal variate (Box–Muller, one value per call).
func (s *Stream) Normal() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Jitter returns a multiplicative noise factor 1 + N(0, rel), clamped to
// [1-4rel, 1+4rel] so a single unlucky draw cannot produce a wild outlier.
// rel = 0 returns exactly 1.
func (s *Stream) Jitter(rel float64) float64 {
	if rel == 0 {
		return 1
	}
	f := 1 + rel*s.Normal()
	lo, hi := 1-4*rel, 1+4*rel
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	return f
}
