package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, "bench|henri|n=3")
	b := New(42, "bench|henri|n=3")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical keys diverged at draw %d", i)
		}
	}
}

func TestLabelIndependence(t *testing.T) {
	a := New(42, "label-a")
	b := New(42, "label-b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("different labels produced %d identical draws", same)
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(1, "x")
	b := New(2, "x")
	if a.Uint64() == b.Uint64() {
		t.Error("different seeds must produce different streams")
	}
}

func TestDerive(t *testing.T) {
	parent := New(7, "parent")
	stateBefore := parent.state
	c1 := parent.Derive("rep0")
	c2 := parent.Derive("rep0")
	if parent.state != stateBefore {
		t.Error("Derive must not advance the parent")
	}
	if c1.Uint64() != c2.Uint64() {
		t.Error("identical derivations must match")
	}
	c3 := parent.Derive("rep1")
	if c3.Uint64() == New(7, "parent").Derive("rep0").Uint64() {
		t.Error("different derivation labels must differ")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed, "f")
		for i := 0; i < 20; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntn(t *testing.T) {
	s := New(3, "intn")
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d/7 values in 200 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	s.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(11, "normal")
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed, "jitter")
		const rel = 0.01
		for i := 0; i < 50; i++ {
			j := s.Jitter(rel)
			if j < 1-4*rel || j > 1+4*rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if New(1, "z").Jitter(0) != 1 {
		t.Error("Jitter(0) must be exactly 1")
	}
}

func TestJitterCentered(t *testing.T) {
	s := New(99, "jc")
	const n = 10000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Jitter(0.05)
	}
	if math.Abs(sum/n-1) > 0.005 {
		t.Errorf("jitter mean = %v, want ≈1", sum/n)
	}
}
