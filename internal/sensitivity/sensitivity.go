// Package sensitivity quantifies how robust the calibration pipeline is:
// the paper observes that "higher prediction errors come most often from
// unstable input data" (§IV-C). Two studies make that concrete:
//
//   - AcrossSeeds re-runs calibration + evaluation under different noise
//     draws and reports the spread of every model parameter and of the
//     prediction errors — how repeatable is a calibration?
//   - AcrossNoise scales the platform's measurement-noise level and
//     tracks how the prediction error grows — how much instability can
//     the §IV-A2 recipe absorb?
package sensitivity

import (
	"fmt"
	"math"

	"memcontention/internal/bench"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/stats"
	"memcontention/internal/sweep"
)

// ParamStat is the spread of one model parameter across runs.
type ParamStat struct {
	Name   string  `json:"name"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	// CV is the coefficient of variation (σ/µ), the paper-agnostic
	// stability measure; 0 for zero-mean parameters.
	CV float64 `json:"cv"`
}

// SeedStudy is the result of AcrossSeeds.
type SeedStudy struct {
	Platform string              `json:"platform"`
	Seeds    []uint64            `json:"seeds"`
	Models   []model.Model       `json:"models"`
	Errors   []eval.ErrorSummary `json:"errors"`
}

// AcrossSeeds calibrates and evaluates cfg once per seed (in parallel).
func AcrossSeeds(cfg bench.Config, seeds []uint64) (*SeedStudy, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sensitivity: no seeds")
	}
	if cfg.Platform == nil {
		return nil, fmt.Errorf("sensitivity: nil platform")
	}
	results, err := sweep.Map(seeds, 0, func(seed uint64) (*eval.PlatformResult, error) {
		c := cfg
		c.Seed = seed
		return eval.EvaluatePlatform(c)
	})
	if err != nil {
		return nil, err
	}
	st := &SeedStudy{Platform: cfg.Platform.Name, Seeds: seeds}
	for _, r := range results {
		st.Models = append(st.Models, r.Model)
		st.Errors = append(st.Errors, r.Errors)
	}
	return st, nil
}

// paramAccessors extracts the numeric fields of a Params for spread
// statistics.
var paramAccessors = []struct {
	name string
	get  func(model.Params) float64
}{
	{"N_par_max", func(p model.Params) float64 { return float64(p.NParMax) }},
	{"T_par_max", func(p model.Params) float64 { return p.TParMax }},
	{"N_seq_max", func(p model.Params) float64 { return float64(p.NSeqMax) }},
	{"T_seq_max", func(p model.Params) float64 { return p.TSeqMax }},
	{"T_par_max2", func(p model.Params) float64 { return p.TPar2 }},
	{"delta_l", func(p model.Params) float64 { return p.DeltaL }},
	{"delta_r", func(p model.Params) float64 { return p.DeltaR }},
	{"B_comp_seq", func(p model.Params) float64 { return p.BCompSeq }},
	{"B_comm_seq", func(p model.Params) float64 { return p.BCommSeq }},
	{"alpha", func(p model.Params) float64 { return p.Alpha }},
}

// ParamSpread reports the spread of the local (or remote) instantiation's
// parameters across the study's runs.
func (s *SeedStudy) ParamSpread(remote bool) []ParamStat {
	out := make([]ParamStat, 0, len(paramAccessors))
	for _, acc := range paramAccessors {
		var vals []float64
		for _, m := range s.Models {
			p := m.Local
			if remote {
				p = m.Remote
			}
			vals = append(vals, acc.get(p))
		}
		st := ParamStat{Name: acc.name, Mean: stats.Mean(vals), StdDev: stats.StdDev(vals)}
		if st.Mean != 0 {
			st.CV = st.StdDev / math.Abs(st.Mean)
		}
		out = append(out, st)
	}
	return out
}

// ErrorSpread reports mean and worst-case prediction errors across seeds.
func (s *SeedStudy) ErrorSpread() (meanAvg, maxAvg float64) {
	var avgs []float64
	for _, e := range s.Errors {
		avgs = append(avgs, e.Average)
	}
	meanAvg = stats.Mean(avgs)
	maxAvg, _ = stats.Max(avgs)
	return meanAvg, maxAvg
}

// SpreadTable renders a ParamSpread.
func SpreadTable(platform string, spread []ParamStat) *export.Table {
	t := export.NewTable(
		fmt.Sprintf("Calibration stability on %s (across seeds)", platform),
		"parameter", "mean", "std dev", "CV",
	)
	for _, p := range spread {
		t.AddRow(p.Name,
			fmt.Sprintf("%.3f", p.Mean),
			fmt.Sprintf("%.4f", p.StdDev),
			fmt.Sprintf("%.4f", p.CV))
	}
	return t
}

// NoisePoint is one row of AcrossNoise.
type NoisePoint struct {
	// Factor scales the profile's noise levels (1 = as tuned).
	Factor float64 `json:"factor"`
	// Errors is the evaluation at that noise level (seed fixed).
	Errors eval.ErrorSummary `json:"errors"`
}

// AcrossNoise evaluates the platform at scaled measurement-noise levels.
// cfg.Profile must be nil (built-in platforms) — the study derives scaled
// copies of the hand-tuned profile.
func AcrossNoise(cfg bench.Config, factors []float64) ([]NoisePoint, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("sensitivity: no noise factors")
	}
	if cfg.Profile != nil {
		return nil, fmt.Errorf("sensitivity: AcrossNoise derives profiles itself; leave cfg.Profile nil")
	}
	if cfg.Platform == nil {
		return nil, fmt.Errorf("sensitivity: nil platform")
	}
	base, err := bench.NewRunner(cfg) // resolves the built-in profile
	if err != nil {
		return nil, err
	}
	baseProf := base.Config().Profile
	points, err := sweep.Map(factors, 0, func(f float64) (NoisePoint, error) {
		if f < 0 {
			return NoisePoint{}, fmt.Errorf("negative noise factor %v", f)
		}
		prof := *baseProf
		prof.CommNominal = append([]float64(nil), baseProf.CommNominal...)
		prof.Quirks.MeasureNoiseRel *= f
		prof.Quirks.CommNoiseRel *= f
		prof.Quirks.ComputeNoiseRel *= f
		c := cfg
		c.Profile = &prof
		r, err := eval.EvaluatePlatform(c)
		if err != nil {
			return NoisePoint{}, err
		}
		return NoisePoint{Factor: f, Errors: r.Errors}, nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// NoiseTable renders an AcrossNoise study.
func NoiseTable(platform string, points []NoisePoint) *export.Table {
	t := export.NewTable(
		fmt.Sprintf("Prediction error vs measurement noise on %s", platform),
		"noise ×", "comm all", "comp all", "average",
	)
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f", p.Factor),
			export.Pct(p.Errors.CommAll),
			export.Pct(p.Errors.CompAll),
			export.Pct(p.Errors.Average))
	}
	return t
}
