package sensitivity

import (
	"strings"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/topology"
)

func TestAcrossSeedsStability(t *testing.T) {
	st, err := AcrossSeeds(bench.Config{Platform: topology.Henri()}, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Models) != 5 || len(st.Errors) != 5 {
		t.Fatalf("study shape wrong: %d models, %d errors", len(st.Models), len(st.Errors))
	}
	// Bandwidth-valued parameters must be highly repeatable (noise is
	// sub-percent on henri); knee positions may wiggle by a core.
	for _, remote := range []bool{false, true} {
		for _, p := range st.ParamSpread(remote) {
			switch p.Name {
			case "B_comp_seq", "B_comm_seq", "T_seq_max", "T_par_max", "alpha":
				if p.CV > 0.02 {
					t.Errorf("remote=%v %s: CV %.4f too unstable", remote, p.Name, p.CV)
				}
			case "N_par_max", "N_seq_max":
				if p.StdDev > 1.0 {
					t.Errorf("remote=%v %s: knee jitter %.2f cores", remote, p.Name, p.StdDev)
				}
			}
		}
	}
	mean, max := st.ErrorSpread()
	if mean <= 0 || max < mean {
		t.Errorf("error spread inconsistent: mean %.2f, max %.2f", mean, max)
	}
	if max > 4.0 {
		t.Errorf("henri worst-seed average error %.2f%% exceeds the 4%% headline", max)
	}
}

func TestAcrossSeedsValidation(t *testing.T) {
	if _, err := AcrossSeeds(bench.Config{Platform: topology.Henri()}, nil); err == nil {
		t.Error("no seeds must fail")
	}
	if _, err := AcrossSeeds(bench.Config{}, []uint64{1}); err == nil {
		t.Error("nil platform must fail")
	}
}

func TestAcrossNoiseGrowth(t *testing.T) {
	points, err := AcrossNoise(bench.Config{Platform: topology.Henri(), Seed: 1}, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Zero noise: the only remaining error sources are the quirks and
	// the model's structural approximations; amplified noise must make
	// things clearly worse than the noise-free floor.
	zero, four := points[0].Errors.Average, points[2].Errors.Average
	if four <= zero {
		t.Errorf("4× noise (%.2f%%) must hurt more than noise-free (%.2f%%)", four, zero)
	}
	if zero > points[1].Errors.Average+1.0 {
		t.Errorf("noise-free error %.2f%% should not exceed nominal %.2f%% by much",
			zero, points[1].Errors.Average)
	}
}

func TestAcrossNoiseValidation(t *testing.T) {
	if _, err := AcrossNoise(bench.Config{Platform: topology.Henri()}, nil); err == nil {
		t.Error("no factors must fail")
	}
	if _, err := AcrossNoise(bench.Config{Platform: topology.Henri()}, []float64{-1}); err == nil {
		t.Error("negative factor must fail")
	}
	prof, err := bench.NewRunner(bench.Config{Platform: topology.Henri()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.Config{Platform: topology.Henri(), Profile: prof.Config().Profile}
	if _, err := AcrossNoise(cfg, []float64{1}); err == nil {
		t.Error("explicit profile must be rejected")
	}
}

func TestTables(t *testing.T) {
	st, err := AcrossSeeds(bench.Config{Platform: topology.Occigen()}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	text := SpreadTable("occigen", st.ParamSpread(false)).String()
	for _, want := range []string{"B_comp_seq", "alpha", "CV"} {
		if !strings.Contains(text, want) {
			t.Errorf("spread table missing %q", want)
		}
	}
	pts, err := AcrossNoise(bench.Config{Platform: topology.Occigen(), Seed: 1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	text = NoiseTable("occigen", pts).String()
	if !strings.Contains(text, "noise ×") || !strings.Contains(text, "%") {
		t.Error("noise table incomplete")
	}
}
