package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"

	"memcontention/internal/kernels"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

// Request is one prediction query: the model's (platform, n, mcomp,
// mcomm, kernel) input. It arrives either as a JSON body or as query
// parameters; DecodeRequest normalises both.
type Request struct {
	Platform string `json:"platform"`
	N        int    `json:"n"`
	MComp    int    `json:"mcomp"`
	MComm    int    `json:"mcomm"`
	Kernel   string `json:"kernel,omitempty"`
}

// Placement converts the request's node pair to the model's type.
func (q Request) Placement() model.Placement {
	return model.Placement{Comp: topology.NodeID(q.MComp), Comm: topology.NodeID(q.MComm)}
}

// Request bounds. N is capped well above any Table I core count so typo'd
// giant sweeps are rejected instead of ground through the model loop;
// node ids are capped at the largest plausible NUMA fan-out.
const (
	MaxN    = 1 << 16
	MaxNode = 255
)

// kernelKinds maps the wire names onto the built-in kernels. The empty
// name is the calibration default.
var kernelKinds = map[string]kernels.Kind{
	"":          kernels.NTMemset,
	"nt-memset": kernels.NTMemset,
	"copy":      kernels.Copy,
	"triad":     kernels.Triad,
	"load":      kernels.Load,
}

// KernelNames lists the accepted kernel names in stable order.
func KernelNames() []string { return []string{"nt-memset", "copy", "triad", "load"} }

// KernelByName resolves a wire kernel name ("" means nt-memset).
func KernelByName(name string) (kernels.Kind, error) {
	kind, ok := kernelKinds[name]
	if !ok {
		return 0, fmt.Errorf("serve: unknown kernel %q (want one of %s)", name, strings.Join(KernelNames(), ", "))
	}
	return kind, nil
}

// DecodeRequest parses one prediction request from a JSON body (when
// non-empty) or from query parameters. It is the fuzzed hardening
// surface: every number is parsed through parseIntField, which rejects
// NaN, ±Inf, fractions, negatives and out-of-range magnitudes the same
// way units.ParseByteSize rejects malformed sizes, so no arithmetic
// downstream ever sees a poisoned value.
func DecodeRequest(body []byte, query url.Values) (Request, error) {
	var q Request
	if len(bytes.TrimSpace(body)) > 0 {
		w, err := decodeJSONBody(body)
		if err != nil {
			return Request{}, err
		}
		q = w
	} else {
		w, err := decodeQuery(query)
		if err != nil {
			return Request{}, err
		}
		q = w
	}
	return q, validateRequest(&q)
}

// wireRequest defers number parsing to json.Number so fractions and
// overflow are caught explicitly rather than silently truncated.
type wireRequest struct {
	Platform string      `json:"platform"`
	N        json.Number `json:"n"`
	MComp    json.Number `json:"mcomp"`
	MComm    json.Number `json:"mcomm"`
	Kernel   string      `json:"kernel"`
}

func decodeJSONBody(body []byte) (Request, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var w wireRequest
	if err := dec.Decode(&w); err != nil {
		return Request{}, fmt.Errorf("serve: decode request body: %w", err)
	}
	// Trailing content after the object is a malformed request, not a
	// stream.
	if dec.More() {
		return Request{}, fmt.Errorf("serve: trailing data after request object")
	}
	q := Request{Platform: w.Platform, Kernel: w.Kernel}
	var err error
	if q.N, err = parseIntField("n", w.N.String(), 1, MaxN); err != nil {
		return Request{}, err
	}
	if q.MComp, err = parseIntField("mcomp", orZero(w.MComp), 0, MaxNode); err != nil {
		return Request{}, err
	}
	if q.MComm, err = parseIntField("mcomm", orZero(w.MComm), 0, MaxNode); err != nil {
		return Request{}, err
	}
	return q, nil
}

// orZero defaults an absent json.Number to "0" (mcomp/mcomm default to
// node 0, matching the paper's baseline placement).
func orZero(n json.Number) string {
	if n.String() == "" {
		return "0"
	}
	return n.String()
}

func decodeQuery(query url.Values) (Request, error) {
	q := Request{
		Platform: query.Get("platform"),
		Kernel:   query.Get("kernel"),
	}
	var err error
	if q.N, err = parseIntField("n", query.Get("n"), 1, MaxN); err != nil {
		return Request{}, err
	}
	if q.MComp, err = parseIntField("mcomp", defaulted(query.Get("mcomp"), "0"), 0, MaxNode); err != nil {
		return Request{}, err
	}
	if q.MComm, err = parseIntField("mcomm", defaulted(query.Get("mcomm"), "0"), 0, MaxNode); err != nil {
		return Request{}, err
	}
	return q, nil
}

func defaulted(s, def string) string {
	if strings.TrimSpace(s) == "" {
		return def
	}
	return s
}

// parseIntField parses one integer field with the ParseByteSize-style
// hardening: reject empty, NaN, ±Inf, fractional, negative and
// out-of-range values with a field-named error.
func parseIntField(name, s string, min, max int) (int, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("serve: missing %s", name)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parse %s %q: %w", name, s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("serve: %s %q is not finite", name, s)
	}
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("serve: %s %q is not an integer", name, s)
	}
	if v < float64(min) || v > float64(max) {
		return 0, fmt.Errorf("serve: %s %q out of range [%d, %d]", name, s, min, max)
	}
	return int(v), nil
}

// validateRequest checks the platform and kernel names and normalises the
// kernel default. Node-range validation against the concrete platform
// happens at prediction time (the decoder does not know the topology).
func validateRequest(q *Request) error {
	if strings.TrimSpace(q.Platform) == "" {
		return fmt.Errorf("serve: missing platform")
	}
	if q.Platform != strings.TrimSpace(q.Platform) {
		return fmt.Errorf("serve: platform %q has surrounding whitespace", q.Platform)
	}
	if _, err := KernelByName(q.Kernel); err != nil {
		return err
	}
	if q.Kernel == "" {
		q.Kernel = "nt-memset"
	}
	return nil
}
