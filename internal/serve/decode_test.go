package serve

import (
	"net/url"
	"strings"
	"testing"
)

func TestDecodeRequestQuery(t *testing.T) {
	q, err := DecodeRequest(nil, url.Values{
		"platform": {"henri"}, "n": {"12"}, "mcomp": {"0"}, "mcomm": {"1"}, "kernel": {"triad"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Request{Platform: "henri", N: 12, MComp: 0, MComm: 1, Kernel: "triad"}
	if q != want {
		t.Errorf("got %+v, want %+v", q, want)
	}
}

func TestDecodeRequestJSONBody(t *testing.T) {
	q, err := DecodeRequest([]byte(`{"platform":"dahu","n":4,"mcomm":1}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Request{Platform: "dahu", N: 4, MComp: 0, MComm: 1, Kernel: "nt-memset"}
	if q != want {
		t.Errorf("got %+v, want %+v", q, want)
	}
	// Body wins over query when both are present.
	q, err = DecodeRequest([]byte(`{"platform":"dahu","n":4}`), url.Values{"platform": {"henri"}, "n": {"9"}})
	if err != nil || q.Platform != "dahu" || q.N != 4 {
		t.Errorf("body did not take precedence: %+v, %v", q, err)
	}
}

func TestDecodeRequestDefaultsKernel(t *testing.T) {
	q, err := DecodeRequest(nil, url.Values{"platform": {"henri"}, "n": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Kernel != "nt-memset" || q.MComp != 0 || q.MComm != 0 {
		t.Errorf("defaults wrong: %+v", q)
	}
}

func TestDecodeRequestRejections(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		query url.Values
		want  string // error substring
	}{
		{"missing platform", "", url.Values{"n": {"1"}}, "missing platform"},
		{"missing n", "", url.Values{"platform": {"henri"}}, "missing n"},
		{"NaN", "", url.Values{"platform": {"henri"}, "n": {"NaN"}}, "not finite"},
		{"Inf", "", url.Values{"platform": {"henri"}, "n": {"+Inf"}}, "not finite"},
		{"negative n", "", url.Values{"platform": {"henri"}, "n": {"-3"}}, "out of range"},
		{"zero n", "", url.Values{"platform": {"henri"}, "n": {"0"}}, "out of range"},
		{"fractional n", "", url.Values{"platform": {"henri"}, "n": {"1.5"}}, "not an integer"},
		{"huge n", "", url.Values{"platform": {"henri"}, "n": {"1e30"}}, "out of range"},
		{"negative node", "", url.Values{"platform": {"henri"}, "n": {"1"}, "mcomm": {"-1"}}, "out of range"},
		{"garbage n", "", url.Values{"platform": {"henri"}, "n": {"four"}}, "parse n"},
		{"unknown kernel", "", url.Values{"platform": {"henri"}, "n": {"1"}, "kernel": {"gemm"}}, "unknown kernel"},
		{"json overflow n", `{"platform":"henri","n":1e999}`, nil, "parse n"},
		{"json NaN-ish", `{"platform":"henri","n":"NaN"}`, nil, "decode request body"},
		{"json unknown field", `{"platform":"henri","n":1,"cores":2}`, nil, "unknown field"},
		{"json trailing", `{"platform":"henri","n":1}{"x":1}`, nil, "trailing data"},
		{"json truncated", `{"platform":"henri"`, nil, "decode request body"},
		{"whitespace platform", "", url.Values{"platform": {" henri "}, "n": {"1"}}, "whitespace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.body), tc.query)
			if err == nil {
				t.Fatal("decode accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestKernelByName(t *testing.T) {
	for _, name := range KernelNames() {
		if _, err := KernelByName(name); err != nil {
			t.Errorf("KernelByName(%q): %v", name, err)
		}
	}
	if _, err := KernelByName("sgemm"); err == nil {
		t.Error("unknown kernel accepted")
	}
}
