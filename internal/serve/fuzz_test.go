package serve

import (
	"net/url"
	"strings"
	"testing"
)

// FuzzDecodeRequest drives the request decoder with arbitrary bytes,
// interpreted both as a JSON body and as a raw query string — the two
// wire surfaces a hostile client controls. The decoder must never panic,
// and anything it accepts must satisfy the documented invariants (the
// same contract units.ParseByteSize holds for sizes: no NaN, no Inf, no
// negatives, bounded magnitude).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"platform":"henri","n":4,"mcomp":0,"mcomm":1}`))
	f.Add([]byte(`{"platform":"dahu","n":64,"kernel":"triad"}`))
	f.Add([]byte(`{"platform":"pyxis","n":1e309}`))
	f.Add([]byte(`{"platform":"henri","n":2.5}`))
	f.Add([]byte(`{"platform":"henri","n":-1}`))
	f.Add([]byte(`{"platform":"henri","n":1,"extra":true}`))
	f.Add([]byte(`{"platform":"henri","n":1}{"trailing":1}`))
	f.Add([]byte("platform=henri&n=12&mcomp=0&mcomm=1"))
	f.Add([]byte("platform=henri&n=NaN"))
	f.Add([]byte("platform=henri&n=+Inf&kernel=copy"))
	f.Add([]byte("platform=occigen&n=0x1p4"))
	f.Add([]byte("n=9"))
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDecoded(t, "json", func() (Request, error) {
			return DecodeRequest(data, nil)
		})
		if q, err := url.ParseQuery(string(data)); err == nil {
			checkDecoded(t, "query", func() (Request, error) {
				return DecodeRequest(nil, q)
			})
		}
	})
}

// checkDecoded asserts the accepted-request invariants.
func checkDecoded(t *testing.T, mode string, decode func() (Request, error)) {
	t.Helper()
	q, err := decode()
	if err != nil {
		return // rejection is always fine; panics are what fuzzing hunts
	}
	if strings.TrimSpace(q.Platform) == "" || q.Platform != strings.TrimSpace(q.Platform) {
		t.Errorf("%s: accepted platform %q", mode, q.Platform)
	}
	if q.N < 1 || q.N > MaxN {
		t.Errorf("%s: accepted n=%d outside [1, %d]", mode, q.N, MaxN)
	}
	if q.MComp < 0 || q.MComp > MaxNode || q.MComm < 0 || q.MComm > MaxNode {
		t.Errorf("%s: accepted node ids (%d, %d) outside [0, %d]", mode, q.MComp, q.MComm, MaxNode)
	}
	if _, err := KernelByName(q.Kernel); err != nil {
		t.Errorf("%s: accepted unknown kernel %q", mode, q.Kernel)
	}
}
