// Package serve is the memserve prediction service: a long-running
// HTTP/JSON server answering the paper's threshold model (§III eqs 1–8)
// at production scale — platform × n × mcomp × mcomm × kernel in,
// predicted compute/comm bandwidths out.
//
// The model itself is cheap (a handful of float comparisons per
// request); the engineering here is everything around it:
//
//   - an immutable calibration cache: the first request for a
//     (platform, kernel, seed) triple runs the §IV-A2 calibration once
//     and pins the resulting model forever, keyed by the platform name
//     plus a content hash of its hardware profile, so a profile change
//     is a different cache entry, never a mutated one;
//   - request coalescing: concurrent requests for the same uncalibrated
//     triple share one calibration run instead of stampeding;
//   - bounded concurrency with backpressure: a semaphore caps in-flight
//     requests, and excess load is shed immediately with 429 plus a
//     Retry-After hint rather than queued into latency collapse;
//   - the full live observability plane (obs.Live): /metrics,
//     /metrics.json, /healthz, /readyz, /debug/pprof, with rolling
//     p50/p90/p99 latency and window QPS refreshed on every scrape;
//   - structured request logging (slogx) with run/request correlation
//     ids, and graceful drain: on context cancellation the server flips
//     /readyz to 503, stops accepting, and waits for in-flight requests.
//
// This package is on memlint's determinism exemption list: a server
// legitimately reads the wall clock. The simulation packages it calls
// remain fully covered.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/obs/slogx"
	"memcontention/internal/topology"
)

// Options configures a Server. The zero value serves every built-in
// platform with sane production defaults.
type Options struct {
	// Platforms restricts (and pre-warms) the served platform set; empty
	// means every built-in Table I platform, calibrated lazily.
	Platforms []string
	// Seed is the calibration measurement-noise seed (default 1), part
	// of the cache key: predictions are reproducible per seed.
	Seed uint64
	// MaxInFlight bounds concurrently handled prediction requests
	// (default 256). Excess requests are shed with 429 + Retry-After.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to shed requests
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Window and WindowSlices shape the rolling latency window behind
	// the p50/p90/p99 gauges (defaults: 10s over 10 slices).
	Window       time.Duration
	WindowSlices int
	// DrainTimeout bounds the graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// Registry receives the serve metrics; nil creates a fresh one (the
	// live plane needs something to scrape).
	Registry *obs.Registry
	// Logger receives structured request logs; nil disables logging.
	Logger *slogx.Logger
	// Clock supplies latency timestamps (default obs.WallClock; tests
	// inject a fake for deterministic latency assertions).
	Clock obs.Clock
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.WindowSlices <= 0 {
		o.WindowSlices = 10
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Clock == nil {
		o.Clock = obs.WallClock
	}
	return o
}

// metricsSet holds the pre-created serve instruments so the request hot
// path never takes the registry lock.
type metricsSet struct {
	requests  map[int]*obs.Counter // by status code
	latency   *obs.Histogram
	inflight  *obs.Gauge
	shed      *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	p50, p90  *obs.Gauge
	p99       *obs.Gauge
	qps       *obs.Gauge
}

func newMetricsSet(reg *obs.Registry) *metricsSet {
	m := &metricsSet{requests: make(map[int]*obs.Counter)}
	for _, code := range []int{200, 400, 404, 405, 429, 500, 503} {
		m.requests[code] = reg.Counter("memcontention_serve_requests_total",
			"Prediction requests by HTTP status code.", obs.L{"code": strconv.Itoa(code)})
	}
	m.latency = reg.Histogram("memcontention_serve_request_seconds",
		"Prediction request latency (cumulative since start).", obs.LatencyBuckets(), nil)
	m.inflight = reg.Gauge("memcontention_serve_inflight_requests",
		"Prediction requests currently being handled.", nil)
	m.shed = reg.Counter("memcontention_serve_shed_total",
		"Requests rejected with 429 because MaxInFlight was reached.", nil)
	m.hits = reg.Counter("memcontention_serve_cache_hits_total",
		"Predictions answered from the immutable calibration cache.", nil)
	m.misses = reg.Counter("memcontention_serve_cache_misses_total",
		"Predictions that had to run a calibration first.", nil)
	m.coalesced = reg.Counter("memcontention_serve_coalesced_total",
		"Requests that joined another request's in-flight calibration.", nil)
	m.p50 = reg.Gauge("memcontention_serve_latency_quantile_seconds",
		"Rolling-window request latency quantile.", obs.L{"quantile": "0.5"})
	m.p90 = reg.Gauge("memcontention_serve_latency_quantile_seconds",
		"Rolling-window request latency quantile.", obs.L{"quantile": "0.9"})
	m.p99 = reg.Gauge("memcontention_serve_latency_quantile_seconds",
		"Rolling-window request latency quantile.", obs.L{"quantile": "0.99"})
	m.qps = reg.Gauge("memcontention_serve_window_qps",
		"Requests per second averaged over the rolling window.", nil)
	return m
}

func (m *metricsSet) code(code int) *obs.Counter {
	if c, ok := m.requests[code]; ok {
		return c
	}
	return m.requests[500]
}

// Server is the memserve HTTP service. Create with New, expose with
// Handler, run with Serve.
type Server struct {
	opts    Options
	reg     *obs.Registry
	probe   *obs.Probe
	rolling *obs.Rolling
	metrics *metricsSet
	logger  *slogx.Logger
	sem     chan struct{}
	cache   *calibCache
	mux     *http.ServeMux
	allowed map[string]bool // served platform names; nil means all built-ins
	runID   string
	reqSeq  atomic.Uint64
}

// New builds a server. Unknown platform names in opts.Platforms fail
// fast rather than 404ing forever at runtime.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	var allowed map[string]bool
	if len(opts.Platforms) > 0 {
		allowed = make(map[string]bool, len(opts.Platforms))
		for _, name := range opts.Platforms {
			if _, err := topology.ByName(name); err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			allowed[name] = true
		}
	}
	s := &Server{
		opts:    opts,
		reg:     opts.Registry,
		probe:   &obs.Probe{},
		rolling: obs.NewRolling(obs.LatencyBuckets(), opts.Window, opts.WindowSlices, opts.Clock),
		metrics: newMetricsSet(opts.Registry),
		logger:  opts.Logger,
		sem:     make(chan struct{}, opts.MaxInFlight),
		cache:   newCalibCache(opts.Registry, opts.Seed),
		allowed: allowed,
		runID:   opts.Logger.RunID(),
	}
	if s.runID == "" {
		s.runID = slogx.NewRunID()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("GET /platforms", s.handlePlatforms)
	live := &obs.Live{Registry: s.reg, Probe: s.probe, OnScrape: s.refreshDerived}
	live.Mount(s.mux)
	obs.MountPprof(s.mux)
	return s, nil
}

// Registry exposes the server's metrics registry (for exit-time
// artifacts).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Probe exposes the readiness probe.
func (s *Server) Probe() *obs.Probe { return s.probe }

// Handler returns the full route set: prediction API plus live plane.
func (s *Server) Handler() http.Handler { return s.mux }

// refreshDerived recomputes the scrape-time gauges from the rolling
// window; obs.Live calls it before every render.
func (s *Server) refreshDerived() {
	q := s.rolling.Quantiles(0.5, 0.9, 0.99)
	s.metrics.p50.Set(q[0])
	s.metrics.p90.Set(q[1])
	s.metrics.p99.Set(q[2])
	s.metrics.qps.Set(s.rolling.Rate())
}

// platformNames reports the served platform set in stable order.
func (s *Server) platformNames() []string {
	if s.allowed == nil {
		return topology.Names()
	}
	names := make([]string, 0, len(s.allowed))
	for name := range s.allowed {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Warm calibrates every served platform for the default kernel, so the
// first real request after /readyz goes green is a cache hit. It flips
// the probe to ready on success.
func (s *Server) Warm(ctx context.Context) error {
	for _, name := range s.platformNames() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, _, err := s.cache.get(name, "nt-memset"); err != nil {
			return fmt.Errorf("serve: warm %s: %w", name, err)
		}
	}
	s.probe.SetReady(true)
	return nil
}

// Response is the prediction reply.
type Response struct {
	Platform string          `json:"platform"`
	N        int             `json:"n"`
	MComp    int             `json:"mcomp"`
	MComm    int             `json:"mcomm"`
	Kernel   string          `json:"kernel"`
	CompGBps float64         `json:"comp_gbps"`
	CommGBps float64         `json:"comm_gbps"`
	Model    string          `json:"model_fingerprint"`
	Cached   bool            `json:"cached"`
	Request  string          `json:"request_id,omitempty"`
	place    model.Placement // kept for logging; not serialised
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // past the header, failures are client disconnects
}

func (s *Server) handlePlatforms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Platforms []string `json:"platforms"`
		Kernels   []string `json:"kernels"`
	}{s.platformNames(), KernelNames()})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.metrics.code(405).Inc()
		w.Header().Set("Allow", "GET, POST")
		s.writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "use GET with query parameters or POST with a JSON body"})
		return
	}
	// Backpressure: shed immediately when saturated; a queued request
	// would only convert overload into latency.
	select {
	case s.sem <- struct{}{}:
	default:
		s.metrics.shed.Inc()
		s.metrics.code(429).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		s.writeJSON(w, http.StatusTooManyRequests, apiError{Error: "server saturated; retry after the indicated backoff"})
		return
	}
	defer func() { <-s.sem }()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	start := s.opts.Clock()
	reqID := fmt.Sprintf("%s-%06d", s.runID, s.reqSeq.Add(1))
	logger := s.logger.With("req_id", reqID)
	code, resp, err := s.predict(r)
	elapsed := s.opts.Clock().Sub(start).Seconds()
	s.rolling.Observe(elapsed)
	s.metrics.latency.Observe(elapsed)
	s.metrics.code(code).Inc()

	if err != nil {
		logger.Warn("predict rejected",
			"method", r.Method, "code", code, "seconds", elapsed, "error", err.Error())
		s.writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	resp.Request = reqID
	logger.Info("predict",
		"platform", resp.Platform, "n", resp.N, "placement", resp.place.String(),
		"kernel", resp.Kernel, "code", code, "cached", resp.Cached, "seconds", elapsed)
	s.writeJSON(w, code, resp)
}

// predict runs one decoded request through the cache and model, and
// reports the HTTP status to attribute it to.
func (s *Server) predict(r *http.Request) (int, *Response, error) {
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			return 400, nil, fmt.Errorf("reading request body: %w", err)
		}
		body = b
	}
	q, err := DecodeRequest(body, r.URL.Query())
	if err != nil {
		return 400, nil, err
	}
	if s.allowed != nil && !s.allowed[q.Platform] {
		return 404, nil, fmt.Errorf("serve: platform %q is not served by this instance", q.Platform)
	}
	entry, cached, err := s.cache.get(q.Platform, q.Kernel)
	if err != nil {
		if _, nameErr := topology.ByName(q.Platform); nameErr != nil {
			return 404, nil, nameErr
		}
		return 500, nil, err
	}
	if cached {
		s.metrics.hits.Inc()
	} else {
		s.metrics.misses.Inc()
	}
	pred, err := entry.model.Predict(q.N, q.Placement())
	if err != nil {
		return 400, nil, err
	}
	return 200, &Response{
		Platform: q.Platform,
		N:        q.N,
		MComp:    q.MComp,
		MComm:    q.MComm,
		Kernel:   q.Kernel,
		CompGBps: pred.Comp,
		CommGBps: pred.Comm,
		Model:    entry.fingerprint,
		Cached:   cached,
		place:    q.Placement(),
	}, nil
}

// Serve runs the server on ln until ctx is cancelled, then drains
// gracefully: readiness goes false first (load balancers stop routing),
// then in-flight requests get DrainTimeout to finish. A clean drain
// returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.probe.SetReady(false)
		s.logger.Info("draining", "timeout", s.opts.DrainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		done <- srv.Shutdown(drainCtx)
	}()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if ctx.Err() != nil {
		if shutdownErr := <-done; shutdownErr != nil && err == nil {
			err = fmt.Errorf("serve: drain: %w", shutdownErr)
		}
	}
	return err
}

// entry is one immutable cache value: a calibrated model pinned to the
// exact platform profile content it was calibrated from.
type entry struct {
	model       model.Model
	platform    *topology.Platform
	fingerprint string
}

// calibCache memoises calibrations. Entries are write-once: get either
// returns the pinned entry, joins an in-flight calibration (coalescing),
// or runs the calibration itself.
type calibCache struct {
	reg  *obs.Registry
	seed uint64

	mu sync.Mutex
	// memlint:guard mu
	done map[string]*entry
	// memlint:guard mu
	inflight map[string]*calibCall
}

type calibCall struct {
	ready chan struct{}
	e     *entry
	err   error
}

func newCalibCache(reg *obs.Registry, seed uint64) *calibCache {
	return &calibCache{
		reg:      reg,
		seed:     seed,
		done:     make(map[string]*entry),
		inflight: make(map[string]*calibCall),
	}
}

// coalesced is bumped via the server's metrics set; the cache keeps its
// own counter reference to avoid a back-pointer.
func (c *calibCache) coalescedCounter() *obs.Counter {
	return c.reg.Counter("memcontention_serve_coalesced_total",
		"Requests that joined another request's in-flight calibration.", nil)
}

// get returns the calibrated entry for (platform, kernel), reporting
// whether it was already cached. Concurrent misses for the same key share
// one calibration run.
func (c *calibCache) get(platform, kernel string) (*entry, bool, error) {
	key := platform + "\x00" + kernel
	c.mu.Lock()
	if e, ok := c.done[key]; ok {
		c.mu.Unlock()
		return e, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalescedCounter().Inc()
		<-call.ready
		return call.e, call.e != nil, call.err
	}
	call := &calibCall{ready: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.e, call.err = c.calibrate(platform, kernel)

	c.mu.Lock()
	if call.err == nil {
		c.done[key] = call.e
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.ready)
	return call.e, false, call.err
}

// calibrate runs the §IV-A2 pipeline once: benchmark the two sample
// placements, extract parameters, combine. The fingerprint binds the
// entry to the platform name, the profile's exact JSON content, the
// kernel and the seed — the "platform + profile hash" cache key.
func (c *calibCache) calibrate(platform, kernel string) (*entry, error) {
	plat, err := topology.ByName(platform)
	if err != nil {
		return nil, err
	}
	prof, err := memsys.ProfileFor(plat.Name)
	if err != nil {
		return nil, err
	}
	kind, err := KernelByName(kernel)
	if err != nil {
		return nil, err
	}
	runner, err := bench.NewRunner(bench.Config{
		Platform: plat,
		Profile:  prof,
		Kernel:   kernels.New(kind),
		Seed:     c.seed,
		Registry: c.reg,
	})
	if err != nil {
		return nil, err
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return nil, err
	}
	return &entry{
		model:       m,
		platform:    plat,
		fingerprint: profileFingerprint(platform, kernel, c.seed, prof),
	}, nil
}

// profileFingerprint content-addresses a cache entry the way
// faults.Plan.Fingerprint addresses fault plans: fnv64a over the
// identifying inputs, rendered as fixed-width hex.
func profileFingerprint(platform, kernel string, seed uint64, prof *memsys.Profile) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|", platform, kernel, seed)
	if data, err := json.Marshal(prof); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
