package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/kernels"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("%s %s: non-JSON body %q: %v", method, path, rec.Body.String(), err)
	}
	return rec, m
}

// expectedPrediction recomputes what the server must answer by running
// the same calibration pipeline directly.
func expectedPrediction(t *testing.T, platform string, seed uint64, kind kernels.Kind, n, mcomp, mcomm int) model.Prediction {
	t.Helper()
	plat, err := topology.ByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := bench.NewRunner(bench.Config{Platform: plat, Kernel: kernels.New(kind), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(n, model.Placement{Comp: topology.NodeID(mcomp), Comm: topology.NodeID(mcomm)})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestPredictMatchesModel(t *testing.T) {
	s := newTestServer(t, Options{Platforms: []string{"henri"}, Seed: 3})
	want := expectedPrediction(t, "henri", 3, kernels.NTMemset, 12, 0, 1)

	rec, body := doJSON(t, s.Handler(), http.MethodGet, "/predict?platform=henri&n=12&mcomp=0&mcomm=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET status = %d, body %v", rec.Code, body)
	}
	if got := body["comp_gbps"].(float64); got != want.Comp {
		t.Errorf("comp_gbps = %g, want %g", got, want.Comp)
	}
	if got := body["comm_gbps"].(float64); got != want.Comm {
		t.Errorf("comm_gbps = %g, want %g", got, want.Comm)
	}
	if body["cached"].(bool) {
		t.Error("first request reported cached")
	}

	// POST body form answers identically — and from the cache this time.
	rec, post := doJSON(t, s.Handler(), http.MethodPost, "/predict",
		`{"platform":"henri","n":12,"mcomp":0,"mcomm":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST status = %d, body %v", rec.Code, post)
	}
	if post["comp_gbps"] != body["comp_gbps"] || post["comm_gbps"] != body["comm_gbps"] {
		t.Error("POST and GET answers diverge")
	}
	if !post["cached"].(bool) {
		t.Error("second request missed the cache")
	}
	if post["model_fingerprint"] != body["model_fingerprint"] {
		t.Error("fingerprint changed between requests")
	}
	if post["request_id"] == body["request_id"] {
		t.Error("request ids must be distinct")
	}
}

func TestPredictionsAreReproduciblePerSeed(t *testing.T) {
	const path = "/predict?platform=diablo&n=8&mcomp=0&mcomm=1&kernel=triad"
	answers := make([]map[string]any, 2)
	for i := range answers {
		s := newTestServer(t, Options{Seed: 7})
		rec, body := doJSON(t, s.Handler(), http.MethodGet, path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("server %d: status %d body %v", i, rec.Code, body)
		}
		answers[i] = body
	}
	for _, key := range []string{"comp_gbps", "comm_gbps", "model_fingerprint"} {
		if answers[0][key] != answers[1][key] {
			t.Errorf("%s not reproducible across identical servers: %v vs %v",
				key, answers[0][key], answers[1][key])
		}
	}
}

func TestPredictErrors(t *testing.T) {
	s := newTestServer(t, Options{Platforms: []string{"henri"}})
	cases := []struct {
		name, method, path, body string
		wantCode                 int
	}{
		{"unknown platform", http.MethodGet, "/predict?platform=nope&n=1", "", 404},
		{"unserved platform", http.MethodGet, "/predict?platform=dahu&n=1", "", 404},
		{"missing n", http.MethodGet, "/predict?platform=henri", "", 400},
		{"zero n", http.MethodGet, "/predict?platform=henri&n=0", "", 400},
		{"NaN n", http.MethodGet, "/predict?platform=henri&n=NaN", "", 400},
		{"negative mcomp", http.MethodGet, "/predict?platform=henri&n=1&mcomp=-1", "", 400},
		{"placement out of range", http.MethodGet, "/predict?platform=henri&n=1&mcomp=9", "", 400},
		{"unknown kernel", http.MethodGet, "/predict?platform=henri&n=1&kernel=fma", "", 400},
		{"bad json", http.MethodPost, "/predict", `{"platform":`, 400},
		{"unknown field", http.MethodPost, "/predict", `{"platform":"henri","n":1,"x":2}`, 400},
		{"method", http.MethodDelete, "/predict?platform=henri&n=1", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, body := doJSON(t, s.Handler(), tc.method, tc.path, tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %v)", rec.Code, tc.wantCode, body)
			}
			if body["error"] == "" {
				t.Error("error body missing")
			}
		})
	}
}

func TestCalibrationCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{Platforms: []string{"henri"}, Registry: reg})

	const callers = 8
	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		entries = make(map[*entry]int)
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e, _, err := s.cache.get("henri", "nt-memset")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			entries[e]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(entries) != 1 {
		t.Fatalf("coalesced callers saw %d distinct entries, want 1", len(entries))
	}
	// One calibration = exactly two parameter extractions (local+remote
	// samples), no matter how many callers raced.
	fits, ok := scrapeValue(t, reg, "memcontention_calib_fits_total")
	if !ok || fits != 2 {
		t.Errorf("calib fits = %v (ok=%v), want exactly 2 — calibration ran more than once", fits, ok)
	}
}

// scrapeValue reads one unlabelled series off the live Prometheus
// endpoint — asserting through the plane under test, not the registry
// internals.
func scrapeValue(t *testing.T, reg *obs.Registry, series string) (float64, bool) {
	t.Helper()
	live := &obs.Live{Registry: reg}
	rec := httptest.NewRecorder()
	live.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	stats, err := obs.ParseExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return stats.Value(series)
}

func TestBackpressureShedsWith429(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{Platforms: []string{"henri"}, MaxInFlight: 1, RetryAfter: 2 * time.Second, Registry: reg})
	// Saturate the semaphore deterministically.
	s.sem <- struct{}{}
	rec, body := doJSON(t, s.Handler(), http.MethodGet, "/predict?platform=henri&n=1", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %v)", rec.Code, body)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	<-s.sem
	if shed, ok := scrapeValue(t, reg, "memcontention_serve_shed_total"); !ok || shed != 1 {
		t.Errorf("shed counter = %v, want 1", shed)
	}
	// Capacity restored: the same request now succeeds.
	rec, _ = doJSON(t, s.Handler(), http.MethodGet, "/predict?platform=henri&n=1", "")
	if rec.Code != http.StatusOK {
		t.Errorf("post-shed status = %d, want 200", rec.Code)
	}
}

func TestLivePlaneMountedAndQuantilesPublished(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{Platforms: []string{"henri"}, Registry: reg})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	if rec := httptest.NewRecorder(); true {
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/readyz after Warm = %d", rec.Code)
		}
	}
	for i := 0; i < 20; i++ {
		rec, _ := doJSON(t, h, http.MethodGet, "/predict?platform=henri&n=4&mcomm=1", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	stats, err := obs.ParseExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if v, ok := stats.Value(`memcontention_serve_requests_total{code="200"}`); !ok || v != 20 {
		t.Errorf("requests counter = %v, want 20", v)
	}
	p99, ok := stats.Value(`memcontention_serve_latency_quantile_seconds{quantile="0.99"}`)
	if !ok || p99 <= 0 {
		t.Errorf("p99 gauge = %v (ok=%v), want > 0", p99, ok)
	}
	if qps, ok := stats.Value("memcontention_serve_window_qps"); !ok || qps <= 0 {
		t.Errorf("window qps = %v, want > 0", qps)
	}
	if hits, ok := stats.Value("memcontention_serve_cache_hits_total"); !ok || hits != 20 {
		t.Errorf("cache hits = %v, want 20 (Warm precalibrated)", hits)
	}
	// /metrics.json and /debug/pprof ride on the same mux.
	recJSON := httptest.NewRecorder()
	h.ServeHTTP(recJSON, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	if recJSON.Code != http.StatusOK {
		t.Errorf("/metrics.json = %d", recJSON.Code)
	}
	recP := httptest.NewRecorder()
	h.ServeHTTP(recP, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if recP.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", recP.Code)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Options{Platforms: []string{"henri"}, DrainTimeout: 2 * time.Second})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/predict?platform=henri&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live request status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain within 5s")
	}
	if s.Probe().Ready() {
		t.Error("probe still ready after drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestNewRejectsUnknownPlatform(t *testing.T) {
	if _, err := New(Options{Platforms: []string{"henri", "atlantis"}}); err == nil {
		t.Fatal("New accepted an unknown platform")
	}
}

func TestPlatformsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Platforms: []string{"pyxis", "henri"}})
	rec, body := doJSON(t, s.Handler(), http.MethodGet, "/platforms", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/platforms = %d", rec.Code)
	}
	got := fmt.Sprintf("%v", body["platforms"])
	if got != "[henri pyxis]" {
		t.Errorf("platforms = %s, want sorted [henri pyxis]", got)
	}
}
