// Package simnet models the network side of the testbed: machines with
// their memory systems, the fabric linking them (InfiniBand / Omni-Path
// class), and message delivery as DMA streams through the receiving (and
// sending) machine's memory system.
//
// A message transfer is two coupled fluid flows: the sender NIC reads the
// data from the sender's memory, the receiver NIC stores it into the
// receiver's memory. The wire rate bounds both; the transfer completes
// when both memory paths have drained, which is the fluid equivalent of a
// rendezvous pipeline. The paper measures receive-side bandwidth (§IV-A1);
// with an idle sender the receive path is the bottleneck, exactly as on
// the real testbed.
package simnet

import (
	"errors"
	"fmt"
	"math"

	"memcontention/internal/engine"
	"memcontention/internal/hwloc"
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// ErrMessageDropped reports a message lost in flight by fault injection.
// The MPI layer retries dropped messages when resilience is configured.
var ErrMessageDropped = errors.New("simnet: message dropped by fault injection")

// DownError reports a transfer endpoint that has crashed.
type DownError struct {
	// Machine is the crashed machine's id.
	Machine int
	// Since is the simulated time of the crash.
	Since float64
}

func (e *DownError) Error() string {
	return fmt.Sprintf("simnet: machine %d is down (crashed at t=%.6fs)", e.Machine, e.Since)
}

// TransferFault is the fault layer's verdict on one message.
type TransferFault struct {
	// Drop loses the message: no data moves and the delivery callback
	// reports ErrMessageDropped once the (faulty) latency has elapsed.
	Drop bool
	// ExtraLatency is added one-way latency in seconds (jitter included).
	ExtraLatency float64
	// WireFactor scales the link's wire rate for this message; 0 or 1
	// mean nominal.
	WireFactor float64
}

// FaultModel lets a fault injector perturb the fabric. Implementations
// must be deterministic in their own seeded state and the arguments so
// that a faulty simulation stays bit-for-bit reproducible.
type FaultModel interface {
	// MachineDown reports whether machine id is crashed at time at, and
	// since when.
	MachineDown(id int, at float64) (down bool, since float64)
	// TransferFault is consulted once per message at injection time.
	// xfer is the fabric's monotonically increasing transfer number.
	TransferFault(src, dst, xfer int, size, at float64) TransferFault
}

// Machine is one cluster node: a platform, its memory system and the flow
// manager simulating it.
type Machine struct {
	ID    int
	Sys   *memsys.System
	Flows *engine.Flows
	Topo  *hwloc.Topology
}

// NewMachine assembles a machine inside the simulation.
func NewMachine(sim *engine.Sim, id int, plat *topology.Platform, prof *memsys.Profile) (*Machine, error) {
	sys, err := memsys.New(plat, prof)
	if err != nil {
		return nil, fmt.Errorf("simnet: machine %d: %w", id, err)
	}
	topo, err := hwloc.FromPlatform(plat)
	if err != nil {
		return nil, fmt.Errorf("simnet: machine %d: %w", id, err)
	}
	flows := engine.NewFlows(sim, sys)
	flows.SetMachine(id)
	return &Machine{ID: id, Sys: sys, Flows: flows, Topo: topo}, nil
}

// Fabric is the interconnect between machines.
type Fabric struct {
	sim *engine.Sim
	// WireRate is the link speed in GB/s (EDR ≈ 12.1, HDR ≈ 23.5,
	// Omni-Path ≈ 11.9).
	WireRate float64
	// Latency is the one-way base latency in seconds.
	Latency float64

	machines map[int]*Machine
	nextXfer int
	// faults, when set, perturbs deliveries. Nil costs one comparison
	// per transfer.
	faults FaultModel
	// spans, when set, wraps every message in a "transfer" causal span
	// parented under Transfer.Parent (the MPI operation). Nil costs one
	// comparison per transfer.
	spans obs.SpanRecorder
}

// SetFaults installs a fault model on the fabric (nil removes it).
func (f *Fabric) SetFaults(fm FaultModel) { f.faults = fm }

// SetSpanRecorder installs a causal span recorder on the fabric (nil
// removes it).
func (f *Fabric) SetSpanRecorder(sr obs.SpanRecorder) { f.spans = sr }

// MachineDown reports whether the fault layer considers machine id crashed
// at the current simulated time (always false without a fault model).
func (f *Fabric) MachineDown(id int) (down bool, since float64) {
	if f.faults == nil {
		return false, 0
	}
	return f.faults.MachineDown(id, f.sim.Now())
}

// NewFabric creates a fabric. Rate must be positive; latency non-negative.
func NewFabric(sim *engine.Sim, wireRate, latency float64) (*Fabric, error) {
	if wireRate <= 0 || math.IsNaN(wireRate) {
		return nil, fmt.Errorf("simnet: wire rate must be positive, got %v", wireRate)
	}
	if latency < 0 || math.IsNaN(latency) {
		return nil, fmt.Errorf("simnet: latency must be non-negative, got %v", latency)
	}
	return &Fabric{sim: sim, WireRate: wireRate, Latency: latency, machines: make(map[int]*Machine)}, nil
}

// Attach registers a machine on the fabric.
func (f *Fabric) Attach(m *Machine) error {
	if _, dup := f.machines[m.ID]; dup {
		return fmt.Errorf("simnet: duplicate machine id %d", m.ID)
	}
	f.machines[m.ID] = m
	return nil
}

// Machine returns an attached machine by id.
func (f *Fabric) Machine(id int) (*Machine, error) {
	m, ok := f.machines[id]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown machine %d", id)
	}
	return m, nil
}

// Transfer describes one message movement between machines.
type Transfer struct {
	Src, Dst         *Machine
	SrcNode, DstNode topology.NodeID
	Size             units.ByteSize
	// Parent is the causal span this transfer belongs to (the MPI
	// operation that posted it; 0 for a root transfer). Only read when
	// the fabric has a span recorder.
	Parent obs.SpanID
}

// Result reports a completed transfer.
type Result struct {
	// Start and End are simulated times (seconds).
	Start, End float64
	// AvgRate is the end-to-end average bandwidth including latency.
	AvgRate units.Bandwidth
}

// Deliver performs a transfer and blocks the calling process until the
// data has fully landed in the destination memory.
func (f *Fabric) Deliver(p *engine.Proc, t Transfer) (Result, error) {
	resCh := make(chan Result, 1)
	errCh := make(chan error, 1)
	sig := f.sim.NewSignal()
	f.DeliverAsync(t, func(r Result, err error) {
		resCh <- r
		errCh <- err
		sig.Fire()
	})
	sig.Wait(p)
	return <-resCh, <-errCh
}

// DeliverAsync performs a transfer and invokes done (in scheduler context)
// on completion. Errors are reported through done: a crashed endpoint
// yields a *DownError, a message lost by fault injection yields
// ErrMessageDropped (after the latency, when the loss would be noticed).
func (f *Fabric) DeliverAsync(t Transfer, done func(Result, error)) {
	if err := f.check(t); err != nil {
		f.sim.After(0, func() { done(Result{}, err) })
		return
	}
	start := f.sim.Now()
	f.nextXfer++
	// The transfer span covers latency, faults and both DMA drains; fin
	// closes it on every completion path, successful or not. span and fin
	// are single-assignment so the closures below capture them by value —
	// reassigning a captured variable would heap-allocate it on the
	// span-free hot path.
	span, fin := f.beginTransferSpan(t, start, done)
	latency, wireCap := f.Latency, f.WireRate
	if f.faults != nil {
		for _, m := range []*Machine{t.Src, t.Dst} {
			if down, since := f.faults.MachineDown(m.ID, start); down {
				derr := &DownError{Machine: m.ID, Since: since}
				f.sim.After(0, func() { fin(Result{Start: start}, derr) })
				return
			}
		}
		fault := f.faults.TransferFault(t.Src.ID, t.Dst.ID, f.nextXfer, float64(t.Size.Bytes()), start)
		if fault.ExtraLatency > 0 {
			latency += fault.ExtraLatency
		}
		if fault.WireFactor > 0 {
			wireCap *= fault.WireFactor
		}
		if fault.Drop {
			f.sim.After(latency, func() { fin(Result{Start: start}, ErrMessageDropped) })
			return
		}
	}
	f.sim.After(latency, func() {
		// The wire bounds both DMA paths; the memory systems may
		// grant less.
		wire := wireCap
		remaining := 2
		finish := func() {
			remaining--
			if remaining > 0 {
				return
			}
			end := f.sim.Now()
			res := Result{Start: start, End: end}
			if end > start {
				res.AvgRate = units.RateFor(t.Size, units.Seconds(end-start))
			}
			fin(res, nil)
		}
		// Sender-side read stream (KindComm on the sender's system).
		srcDemand := math.Min(wire, t.Src.Sys.CommDemand(t.SrcNode))
		srcH := t.Src.Flows.StartWithParent(memsys.Stream{
			Kind:   memsys.KindComm,
			Node:   t.SrcNode,
			Demand: srcDemand,
		}, t.Size, span)
		// Receiver-side write stream.
		dstDemand := math.Min(wire, t.Dst.Sys.CommDemand(t.DstNode))
		dstH := t.Dst.Flows.StartWithParent(memsys.Stream{
			Kind:   memsys.KindComm,
			Node:   t.DstNode,
			Demand: dstDemand,
		}, t.Size, span)
		waitHandle(f.sim, srcH, finish)
		waitHandle(f.sim, dstH, finish)
	})
}

// beginTransferSpan opens the causal span of one transfer and returns it
// with the completion callback that closes it; with spans off it returns
// done unchanged at zero cost.
func (f *Fabric) beginTransferSpan(t Transfer, start float64, done func(Result, error)) (obs.SpanID, func(Result, error)) {
	if f.spans == nil {
		return 0, done
	}
	span := f.spans.BeginSpan(t.Parent,
		fmt.Sprintf("xfer m%d:n%d→m%d:n%d", t.Src.ID, t.SrcNode, t.Dst.ID, t.DstNode),
		"transfer", start, obs.SpanAttrs{Machine: t.Src.ID, Rank: -1, Node: -1, Stream: "comm"})
	return span, func(r Result, err error) {
		f.spans.EndSpan(span, f.sim.Now())
		done(r, err)
	}
}

// waitHandle invokes fn once the flow completes, via a watcher process.
func waitHandle(sim *engine.Sim, h *engine.Handle, fn func()) {
	sim.Spawn("simnet-wait", func(p *engine.Proc) {
		h.Wait(p)
		fn()
	})
}

func (f *Fabric) check(t Transfer) error {
	switch {
	case t.Src == nil || t.Dst == nil:
		return fmt.Errorf("simnet: transfer with nil machine")
	case t.Src == t.Dst:
		return fmt.Errorf("simnet: loopback transfer on machine %d (use memcpy, not the fabric)", t.Src.ID)
	case t.Size <= 0:
		return fmt.Errorf("simnet: non-positive transfer size %d", t.Size)
	case int(t.SrcNode) < 0 || int(t.SrcNode) >= t.Src.Sys.Platform().NNodes():
		return fmt.Errorf("simnet: source node %d out of range", t.SrcNode)
	case int(t.DstNode) < 0 || int(t.DstNode) >= t.Dst.Sys.Platform().NNodes():
		return fmt.Errorf("simnet: destination node %d out of range", t.DstNode)
	}
	if _, ok := f.machines[t.Src.ID]; !ok {
		return fmt.Errorf("simnet: source machine %d not attached", t.Src.ID)
	}
	if _, ok := f.machines[t.Dst.ID]; !ok {
		return fmt.Errorf("simnet: destination machine %d not attached", t.Dst.ID)
	}
	return nil
}

// WireRateFor returns a plausible wire rate (GB/s) for a network
// technology, used when assembling clusters from Table I platforms.
func WireRateFor(tech topology.NetworkTech, pcieGen int) float64 {
	switch tech {
	case topology.OmniPath:
		return 11.9
	case topology.InfiniBand:
		if pcieGen >= 4 {
			return 23.5 // HDR
		}
		return 12.1 // EDR
	default:
		return 12.1
	}
}
