package simnet

import (
	"math"
	"testing"

	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func twoMachines(t *testing.T, wire, latency float64) (*engine.Sim, *Fabric, *Machine, *Machine) {
	t.Helper()
	sim := engine.NewSim()
	fabric, err := NewFabric(sim, wire, latency)
	if err != nil {
		t.Fatal(err)
	}
	plat := topology.Henri()
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	var ms [2]*Machine
	for i := range ms {
		m, err := NewMachine(sim, i, plat, prof)
		if err != nil {
			t.Fatal(err)
		}
		if err := fabric.Attach(m); err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return sim, fabric, ms[0], ms[1]
}

func TestDeliverTiming(t *testing.T) {
	const latency = 2e-6
	sim, fabric, m0, m1 := twoMachines(t, 12.1, latency)
	var res Result
	sim.Spawn("recv", func(p *engine.Proc) {
		var err error
		res, err = fabric.Deliver(p, Transfer{
			Src: m0, Dst: m1, SrcNode: 0, DstNode: 0, Size: 64 * units.MiB,
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Receive path: min(wire 12.1, nominal 10.9) = 10.9 GB/s; the send
	// path is the same nominal so both drain together.
	want := latency + float64(64*units.MiB)/(10.9*units.BytesPerGB)
	if math.Abs(res.End-want) > 1e-9 {
		t.Errorf("transfer ended at %v, want %v", res.End, want)
	}
	if res.AvgRate <= 0 {
		t.Error("missing average rate")
	}
}

func TestWireRateBounds(t *testing.T) {
	sim, fabric, m0, m1 := twoMachines(t, 5.0, 0) // slow wire
	var res Result
	sim.Spawn("recv", func(p *engine.Proc) {
		res, _ = fabric.Deliver(p, Transfer{
			Src: m0, Dst: m1, SrcNode: 0, DstNode: 0, Size: 64 * units.MiB,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if res.AvgRate.GBps() > 5.0+1e-9 {
		t.Errorf("transfer at %v GB/s exceeds the 5 GB/s wire", res.AvgRate.GBps())
	}
}

func TestDeliverErrors(t *testing.T) {
	sim, fabric, m0, m1 := twoMachines(t, 12.1, 0)
	plat := topology.Henri()
	prof, _ := memsys.ProfileFor("henri")
	detached, err := NewMachine(sim, 7, plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tr   Transfer
	}{
		{"nil machine", Transfer{Src: nil, Dst: m1, Size: units.MiB}},
		{"loopback", Transfer{Src: m0, Dst: m0, Size: units.MiB}},
		{"zero size", Transfer{Src: m0, Dst: m1, Size: 0}},
		{"bad src node", Transfer{Src: m0, Dst: m1, SrcNode: 9, Size: units.MiB}},
		{"bad dst node", Transfer{Src: m0, Dst: m1, DstNode: 9, Size: units.MiB}},
		{"unattached machine", Transfer{Src: detached, Dst: m1, Size: units.MiB}},
	}
	for _, c := range cases {
		c := c
		sim.Spawn("t", func(p *engine.Proc) {
			if _, err := fabric.Deliver(p, c.tr); err == nil {
				t.Errorf("%s: expected error", c.name)
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFabricValidation(t *testing.T) {
	sim := engine.NewSim()
	if _, err := NewFabric(sim, 0, 0); err == nil {
		t.Error("zero wire rate must be rejected")
	}
	if _, err := NewFabric(sim, 10, -1); err == nil {
		t.Error("negative latency must be rejected")
	}
	fabric, err := NewFabric(sim, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plat := topology.Henri()
	prof, _ := memsys.ProfileFor("henri")
	m, err := NewMachine(sim, 0, plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := fabric.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := fabric.Attach(m); err == nil {
		t.Error("duplicate attach must fail")
	}
	if _, err := fabric.Machine(0); err != nil {
		t.Error("attached machine must be resolvable")
	}
	if _, err := fabric.Machine(9); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestConcurrentTransfersContendOnPCIe(t *testing.T) {
	// Two simultaneous receives into the same machine share its PCIe /
	// controller path, so each is slower than alone.
	sim, fabric, m0, m1 := twoMachines(t, 100, 0) // wire not the bottleneck
	var alone, shared Result
	sim.Spawn("phase", func(p *engine.Proc) {
		alone, _ = fabric.Deliver(p, Transfer{Src: m0, Dst: m1, SrcNode: 0, DstNode: 0, Size: 64 * units.MiB})
		done := sim.NewSignal()
		remaining := 2
		for i := 0; i < 2; i++ {
			fabric.DeliverAsync(Transfer{Src: m0, Dst: m1, SrcNode: 0, DstNode: 0, Size: 64 * units.MiB},
				func(r Result, err error) {
					if err != nil {
						t.Error(err)
					}
					shared = r
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				})
		}
		done.Wait(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if shared.AvgRate.GBps() >= alone.AvgRate.GBps() {
		t.Errorf("shared transfer (%v) must be slower than alone (%v)", shared.AvgRate, alone.AvgRate)
	}
}

func TestWireRateFor(t *testing.T) {
	if WireRateFor(topology.OmniPath, 3) != 11.9 {
		t.Error("Omni-Path wire rate wrong")
	}
	if WireRateFor(topology.InfiniBand, 3) != 12.1 {
		t.Error("EDR wire rate wrong")
	}
	if WireRateFor(topology.InfiniBand, 4) != 23.5 {
		t.Error("HDR wire rate wrong")
	}
	if WireRateFor(topology.NetworkTech("other"), 3) <= 0 {
		t.Error("unknown tech must still return a positive rate")
	}
}
