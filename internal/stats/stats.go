// Package stats provides the numerical helpers used by calibration and
// evaluation: descriptive statistics, the paper's error metric (mean
// absolute percentage error), linear fitting and curve analysis utilities
// (argmax with tolerance, knee detection on piecewise-linear data).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs and its index. Empty input returns (0, -1).
func Min(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, -1
	}
	m, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x < m {
			m, idx = x, i+1
		}
	}
	return m, idx
}

// Max returns the maximum of xs and its index. Empty input returns (0, -1).
func Max(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, -1
	}
	m, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x > m {
			m, idx = x, i+1
		}
	}
	return m, idx
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the population standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SampleStdDev returns the sample (Bessel-corrected, n−1) standard
// deviation of xs (0 for n < 2). Replication sweeps use it: the
// replications are a sample of the run-to-run noise distribution, not the
// whole population.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; beyond 30 the normal approximation 1.96 is used (the error
// is below 2% there).
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its
// two-sided 95% confidence interval (Student-t on n−1 degrees of
// freedom). Fewer than two samples give a zero half-width: a single run
// carries no variability information — exactly the blind spot the
// replication sweep exists to close.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	t := 1.96
	if df := n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * SampleStdDev(xs) / math.Sqrt(float64(n))
}

// Median returns the median of xs (mean of the two middle elements for even
// lengths). It does not modify xs. Empty input returns 0.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MAPE computes the paper's prediction-error metric (§IV-B):
//
//	100%/n × Σ |actual_k − predicted_k| / |actual_k|
//
// Pairs whose actual value is zero are skipped (they would be undefined);
// if every pair is skipped or the slices are empty, MAPE returns an error.
// The two slices must have equal length.
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, errors.New("stats: MAPE length mismatch")
	}
	sum, n := 0.0, 0
	for i, a := range actual {
		if a == 0 {
			continue
		}
		sum += math.Abs(a-predicted[i]) / math.Abs(a)
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return 100 * sum / float64(n), nil
}

// LinearFit fits y = a + b·x by least squares and returns (a, b).
// It requires at least two points with distinct x values.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit degenerate x")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// ArgmaxTolerant returns the index of the *first* element whose value is
// within relTol (relative) of the global maximum. The paper's calibration
// "mostly looks for minima and maxima" on noisy plateaus; picking the first
// near-max point recovers the knee position rather than a point far into a
// flat plateau. Empty input returns -1.
func ArgmaxTolerant(xs []float64, relTol float64) int {
	m, idx := Max(xs)
	if idx < 0 {
		return -1
	}
	if m <= 0 {
		return idx
	}
	thresh := m * (1 - relTol)
	for i, x := range xs {
		if x >= thresh {
			return i
		}
	}
	return idx
}

// ArgmaxLastTolerant returns the index of the *last* element within relTol of
// the maximum — the right edge of a plateau. Empty input returns -1.
func ArgmaxLastTolerant(xs []float64, relTol float64) int {
	m, idx := Max(xs)
	if idx < 0 {
		return -1
	}
	if m <= 0 {
		return idx
	}
	thresh := m * (1 - relTol)
	last := idx
	for i, x := range xs {
		if x >= thresh {
			last = i
		}
	}
	return last
}

// SlopeBetween returns the per-step slope of ys between indices i and j,
// i.e. (ys[j]−ys[i])/(j−i). It returns 0 when i == j.
func SlopeBetween(ys []float64, i, j int) float64 {
	if i == j {
		return 0
	}
	return (ys[j] - ys[i]) / float64(j-i)
}

// MovingAverage smooths xs with a centred window of the given odd width.
// Width <= 1 returns a copy. Edges use the available partial window.
func MovingAverage(xs []float64, width int) []float64 {
	out := make([]float64, len(xs))
	if width <= 1 {
		copy(out, xs)
		return out
	}
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// AbsRelErr returns |actual−predicted|/|actual| (the per-point MAPE term),
// or 0 when actual is zero.
func AbsRelErr(actual, predicted float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(actual-predicted) / math.Abs(actual)
}
