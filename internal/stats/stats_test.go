package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if m := Mean(xs); !almost(m, 2.8) {
		t.Errorf("Mean = %v, want 2.8", m)
	}
	if v, i := Min(xs); v != 1 || i != 1 {
		t.Errorf("Min = (%v,%d), want (1,1) — first minimum wins", v, i)
	}
	if v, i := Max(xs); v != 5 || i != 4 {
		t.Errorf("Max = (%v,%d), want (5,4)", v, i)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if _, i := Min(nil); i != -1 {
		t.Error("Min(nil) must report index -1")
	}
}

func TestMedianStdDev(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("Median odd = %v, want 3", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !almost(m, 2.5) {
		t.Errorf("Median even = %v, want 2.5", m)
	}
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("StdDev constant = %v, want 0", s)
	}
	if s := StdDev([]float64{1, 3}); !almost(s, 1) {
		t.Errorf("StdDev{1,3} = %v, want 1", s)
	}
	// Median must not reorder its input.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Median modified its input")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{10, 20}, []float64{9, 22})
	if err != nil {
		t.Fatal(err)
	}
	// (|10-9|/10 + |20-22|/20)/2 = (0.1+0.1)/2 = 10%
	if !almost(got, 10) {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	// Zero actuals are skipped.
	got, err = MAPE([]float64{0, 10}, []float64{5, 10})
	if err != nil || got != 0 {
		t.Errorf("MAPE with zero actual = (%v,%v), want (0,nil)", got, err)
	}
	if _, err := MAPE([]float64{0}, []float64{5}); err == nil {
		t.Error("all-zero actuals must error")
	}
}

func TestMAPEProperties(t *testing.T) {
	perfect := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] = math.Abs(vals[i]) + 1 // positive actuals
		}
		got, err := MAPE(vals, vals)
		return err == nil && almost(got, 0)
	}
	if err := quick.Check(perfect, nil); err != nil {
		t.Error("MAPE(x,x) must be 0:", err)
	}
	scaleInvariant := func(a, p uint16) bool {
		actual := float64(a) + 1
		pred := float64(p) + 1
		e1, _ := MAPE([]float64{actual}, []float64{pred})
		e2, _ := MAPE([]float64{actual * 7}, []float64{pred * 7})
		return almost(e1, e2)
	}
	if err := quick.Check(scaleInvariant, nil); err != nil {
		t.Error("MAPE must be scale-invariant:", err)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 1) || !almost(b, 2) {
		t.Errorf("LinearFit = (%v,%v), want (1,2)", a, b)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x must error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point must error")
	}
}

func TestArgmaxTolerant(t *testing.T) {
	// Plateau: 10, 50, 49.9, 50.1 — first within 0.5% of 50.1 is index 1.
	xs := []float64{10, 50, 49.9, 50.1}
	if i := ArgmaxTolerant(xs, 0.005); i != 1 {
		t.Errorf("ArgmaxTolerant = %d, want 1 (first plateau point)", i)
	}
	if i := ArgmaxTolerant(xs, 0); i != 3 {
		t.Errorf("ArgmaxTolerant(tol=0) = %d, want 3 (strict max)", i)
	}
	if i := ArgmaxLastTolerant(xs, 0.005); i != 3 {
		t.Errorf("ArgmaxLastTolerant = %d, want 3", i)
	}
	if ArgmaxTolerant(nil, 0.01) != -1 {
		t.Error("empty input must return -1")
	}
	// All non-positive values: strict argmax.
	if i := ArgmaxTolerant([]float64{-5, -1, -3}, 0.01); i != 1 {
		t.Errorf("ArgmaxTolerant(neg) = %d, want 1", i)
	}
}

func TestSlopeBetween(t *testing.T) {
	ys := []float64{0, 2, 4, 6}
	if s := SlopeBetween(ys, 0, 3); !almost(s, 2) {
		t.Errorf("SlopeBetween = %v, want 2", s)
	}
	if s := SlopeBetween(ys, 2, 2); s != 0 {
		t.Errorf("SlopeBetween same index = %v, want 0", s)
	}
	if s := SlopeBetween(ys, 3, 1); !almost(s, 2) {
		t.Errorf("SlopeBetween reversed = %v, want 2", s)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got = MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Error("width 1 must copy")
		}
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
	if !almost(Lerp(10, 20, 0.25), 12.5) {
		t.Error("Lerp broken")
	}
}

func TestAbsRelErr(t *testing.T) {
	if !almost(AbsRelErr(10, 9), 0.1) {
		t.Error("AbsRelErr(10,9) must be 0.1")
	}
	if AbsRelErr(0, 5) != 0 {
		t.Error("AbsRelErr with zero actual must be 0")
	}
}

func TestSampleStdDev(t *testing.T) {
	if got := SampleStdDev(nil); got != 0 {
		t.Fatalf("SampleStdDev(nil) = %v", got)
	}
	if got := SampleStdDev([]float64{5}); got != 0 {
		t.Fatalf("SampleStdDev(single) = %v", got)
	}
	// {2, 4, 4, 4, 5, 5, 7, 9}: population stddev 2, sample variance
	// 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7.0)
	if got := SampleStdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SampleStdDev = %v, want %v", got, want)
	}
	// Bessel correction: sample stddev strictly exceeds population
	// stddev for any non-constant sample.
	if SampleStdDev(xs) <= StdDev(xs) {
		t.Fatal("sample stddev not larger than population stddev")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{3})
	if mean != 3 || half != 0 {
		t.Fatalf("single sample CI = (%v, %v)", mean, half)
	}
	// Two samples: df=1, t=12.706; half = t * s / sqrt(2).
	mean, half = MeanCI95([]float64{1, 3})
	s := SampleStdDev([]float64{1, 3})
	want := 12.706 * s / math.Sqrt(2)
	if mean != 2 || math.Abs(half-want) > 1e-9 {
		t.Fatalf("CI95(1,3) = (%v, %v), want (2, %v)", mean, half, want)
	}
	// Constant samples have zero dispersion regardless of n.
	if _, half = MeanCI95([]float64{4, 4, 4, 4}); half != 0 {
		t.Fatalf("constant sample half-width = %v", half)
	}
	// Large n falls back to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, half = MeanCI95(big)
	want = 1.96 * SampleStdDev(big) / 10
	if math.Abs(half-want) > 1e-12 {
		t.Fatalf("large-n half-width = %v, want %v", half, want)
	}
	// More replications shrink the interval (same per-sample spread).
	_, h4 := MeanCI95([]float64{1, 3, 1, 3})
	_, h8 := MeanCI95([]float64{1, 3, 1, 3, 1, 3, 1, 3})
	if h8 >= h4 {
		t.Fatalf("CI did not shrink with replications: %v >= %v", h8, h4)
	}
}
