package stencil

import (
	"fmt"

	"memcontention/internal/model"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Advice is the Advisor's recommended configuration with its predicted
// timing breakdown.
type Advice struct {
	Cores     int             `json:"cores"`
	Placement model.Placement `json:"placement"`
	// PredictedIter is the predicted per-iteration time (seconds) under
	// the overlap schedule.
	PredictedIter float64 `json:"predicted_iter"`
	// ComputeTime / CommTime are the overlapped components.
	ComputeTime float64 `json:"compute_time"`
	CommTime    float64 `json:"comm_time"`
}

// PredictIteration estimates the overlapped iteration time of a stencil
// configuration from the calibrated model: the computation moves
// DomainBytes at Bcomp_par(n), the two halo receives move 2·HaloBytes at
// Bcomm_par(n), and overlap means the iteration costs the maximum of the
// two (§I: "in the hope that their cost becomes basically free").
func PredictIteration(m model.Model, cfg Config) (Advice, error) {
	pl := model.Placement{Comp: cfg.CompNode, Comm: cfg.CommNode}
	pred, err := m.Predict(cfg.Cores, pl)
	if err != nil {
		return Advice{}, err
	}
	if pred.Comp <= 0 || pred.Comm <= 0 {
		return Advice{}, fmt.Errorf("stencil: degenerate prediction %+v", pred)
	}
	a := Advice{Cores: cfg.Cores, Placement: pl}
	// Fixed problem size: more cores extract more bandwidth (until
	// contention) and the same bytes finish sooner.
	a.ComputeTime = float64(cfg.DomainBytes) / (pred.Comp * units.BytesPerGB)
	// Two halves arrive through one NIC; their aggregate is bounded by
	// the predicted communication bandwidth.
	a.CommTime = float64(2*cfg.HaloBytes) / (pred.Comm * units.BytesPerGB)
	if a.ComputeTime > a.CommTime {
		a.PredictedIter = a.ComputeTime
	} else {
		a.PredictedIter = a.CommTime
	}
	return a, nil
}

// Advise searches every (cores, placement) configuration and returns the
// one minimising the predicted iteration time — what a contention-aware
// runtime would do before launching the solver.
func Advise(m model.Model, plat *topology.Platform, base Config) (Advice, error) {
	if plat == nil {
		return Advice{}, fmt.Errorf("stencil: nil platform")
	}
	var best Advice
	found := false
	for comp := 0; comp < plat.NNodes(); comp++ {
		for comm := 0; comm < plat.NNodes(); comm++ {
			for n := 1; n <= plat.CoresPerSocket(); n++ {
				cfg := base
				cfg.Cores = n
				cfg.CompNode = topology.NodeID(comp)
				cfg.CommNode = topology.NodeID(comm)
				a, err := PredictIteration(m, cfg)
				if err != nil {
					return Advice{}, err
				}
				if !found || a.PredictedIter < best.PredictedIter {
					best = a
					found = true
				}
			}
		}
	}
	if !found {
		return Advice{}, fmt.Errorf("stencil: no feasible configuration")
	}
	return best, nil
}

// NaiveConfig is what an unaware application does: all cores, every
// buffer on node 0.
func NaiveConfig(plat *topology.Platform, base Config) Config {
	base.Cores = plat.CoresPerSocket()
	base.CompNode = 0
	base.CommNode = 0
	return base
}
