// Package stencil is the application-level study motivating the paper: an
// iterative 1-D stencil solver whose ranks compute over their domain and
// exchange halos with both neighbours each iteration — the communication/
// computation overlap pattern of task-based runtimes (StarPU, PaRSEC)
// cited in §IV-A1.
//
// The package runs the application on the simulated cluster under two
// schedules (sequential and overlapped) and provides an Advisor that uses
// the calibrated contention model to pick the core count and data
// placement minimising the predicted iteration time — the §VI future-work
// use case ("runtime systems could better know on which NUMA node store
// data and how many computing cores should be used").
package stencil

import (
	"fmt"

	"memcontention/internal/kernels"
	"memcontention/internal/mpi"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Schedule selects how each iteration orders work.
type Schedule int

// Schedules.
const (
	// Sequential computes, then exchanges halos: no overlap, no
	// contention — the baseline the paper's introduction starts from.
	Sequential Schedule = iota
	// Overlap posts the halo exchange, computes while it progresses,
	// then waits: communication is (ideally) free, but contends with
	// the computation for memory bandwidth — the paper's subject.
	Overlap
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Overlap:
		return "overlap"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Config parameterises an application run.
type Config struct {
	// Machines is the ring length (one rank per machine).
	Machines int
	// Iterations of compute + halo exchange.
	Iterations int
	// Cores computing on each rank (first socket, first Cores cores).
	Cores int
	// DomainBytes is each rank's memory traffic per iteration (the
	// fixed problem size, split across the computing cores — strong
	// scaling, as in a real solver).
	DomainBytes units.ByteSize
	// HaloBytes per neighbour per iteration.
	HaloBytes units.ByteSize
	// CompNode/CommNode: NUMA placement of the two data kinds.
	CompNode, CommNode topology.NodeID
	// Schedule orders the iteration.
	Schedule Schedule
	// Kernel defaults to the non-temporal memset.
	Kernel kernels.Kernel
}

func (c Config) withDefaults() (Config, error) {
	if c.Machines < 2 {
		return c, fmt.Errorf("stencil: need at least 2 machines, got %d", c.Machines)
	}
	if c.Iterations < 1 {
		return c, fmt.Errorf("stencil: need at least 1 iteration")
	}
	if c.Cores < 1 {
		return c, fmt.Errorf("stencil: need at least 1 computing core")
	}
	if c.DomainBytes <= 0 || c.HaloBytes <= 0 {
		return c, fmt.Errorf("stencil: sizes must be positive")
	}
	if c.Kernel.DemandFactor == 0 {
		c.Kernel = kernels.New(kernels.NTMemset)
	}
	return c, nil
}

// Result reports an application run.
type Result struct {
	// SimTime is the total simulated wall time (seconds).
	SimTime float64
	// PerIteration is SimTime / Iterations.
	PerIteration float64
	// Schedule echoes the configuration.
	Schedule Schedule
}

// Runner abstracts the cluster so the package stays decoupled from the
// facade; the root package and tests supply the implementation.
type Runner interface {
	// Run executes main on one rank per machine and returns the
	// simulated time.
	Run(ranksPerMachine int, main func(*mpi.Ctx)) (float64, error)
	// Platform describes the machines.
	Platform() *topology.Platform
}

const haloTag = 11

// Run executes the stencil application on the cluster.
func Run(cluster Runner, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	plat := cluster.Platform()
	if cfg.Cores > plat.CoresPerSocket() {
		return Result{}, fmt.Errorf("stencil: %d cores exceed the socket's %d", cfg.Cores, plat.CoresPerSocket())
	}
	if int(cfg.CompNode) >= plat.NNodes() || int(cfg.CommNode) >= plat.NNodes() {
		return Result{}, fmt.Errorf("stencil: placement out of range")
	}

	var firstErr error
	simTime, err := cluster.Run(1, func(ctx *mpi.Ctx) {
		if err := rankMain(ctx, cfg); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("stencil: rank %d: %w", ctx.Rank(), err)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	return Result{
		SimTime:      simTime,
		PerIteration: simTime / float64(cfg.Iterations),
		Schedule:     cfg.Schedule,
	}, nil
}

// rankMain is one rank's program.
func rankMain(ctx *mpi.Ctx, cfg Config) error {
	me, size := ctx.Rank(), ctx.Size()
	right := (me + 1) % size
	left := (me - 1 + size) % size
	cores := ctx.Machine().Topo.SocketSet(0).Take(cfg.Cores)
	work := kernels.Assignment{
		Kernel: cfg.Kernel,
		Cores:  []topology.CoreID(cores),
		Node:   cfg.CompNode,
	}
	perCore := cfg.DomainBytes / units.ByteSize(cfg.Cores)

	for iter := 0; iter < cfg.Iterations; iter++ {
		switch cfg.Schedule {
		case Sequential:
			if _, err := ctx.Compute(work, perCore); err != nil {
				return err
			}
			if err := exchange(ctx, cfg, left, right, nil); err != nil {
				return err
			}
		case Overlap:
			var pending []*mpi.Request
			if err := exchange(ctx, cfg, left, right, &pending); err != nil {
				return err
			}
			if _, err := ctx.Compute(work, perCore); err != nil {
				return err
			}
			if err := ctx.WaitAll(pending...); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown schedule %v", cfg.Schedule)
		}
		ctx.Barrier()
	}
	return nil
}

// exchange posts the halo sends/receives with both neighbours. With
// pending == nil it completes them before returning (sequential); with a
// non-nil pending it returns the outstanding requests (overlap).
func exchange(ctx *mpi.Ctx, cfg Config, left, right int, pending *[]*mpi.Request) error {
	recvL, err := ctx.Irecv(left, haloTag, cfg.HaloBytes, cfg.CommNode)
	if err != nil {
		return err
	}
	recvR, err := ctx.Irecv(right, haloTag, cfg.HaloBytes, cfg.CommNode)
	if err != nil {
		return err
	}
	sendR, err := ctx.Isend(right, haloTag, cfg.HaloBytes, cfg.CommNode, nil)
	if err != nil {
		return err
	}
	sendL, err := ctx.Isend(left, haloTag, cfg.HaloBytes, cfg.CommNode, nil)
	if err != nil {
		return err
	}
	reqs := []*mpi.Request{recvL, recvR, sendR, sendL}
	if pending == nil {
		return ctx.WaitAll(reqs...)
	}
	*pending = append(*pending, reqs...)
	return nil
}
