package stencil

import (
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/mpi"
	"memcontention/internal/simnet"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// testCluster is a minimal Runner over the simulation substrate.
type testCluster struct {
	plat     *topology.Platform
	machines int
}

func (tc *testCluster) Platform() *topology.Platform { return tc.plat }

func (tc *testCluster) Run(ranksPerMachine int, main func(*mpi.Ctx)) (float64, error) {
	sim := engine.NewSim()
	wire := simnet.WireRateFor(tc.plat.NIC.Tech, tc.plat.NIC.PCIeGen)
	fabric, err := simnet.NewFabric(sim, wire, 1.5e-6)
	if err != nil {
		return 0, err
	}
	prof, err := memsys.ProfileFor(tc.plat.Name)
	if err != nil {
		return 0, err
	}
	var machines []*simnet.Machine
	for i := 0; i < tc.machines; i++ {
		m, err := simnet.NewMachine(sim, i, tc.plat, prof)
		if err != nil {
			return 0, err
		}
		if err := fabric.Attach(m); err != nil {
			return 0, err
		}
		machines = append(machines, m)
	}
	world, err := mpi.NewWorld(sim, fabric, machines, ranksPerMachine)
	if err != nil {
		return 0, err
	}
	world.Launch(main)
	if err := sim.Run(); err != nil {
		return sim.Now(), err
	}
	return sim.Now(), nil
}

func henriCluster(machines int) *testCluster {
	return &testCluster{plat: topology.Henri(), machines: machines}
}

func baseConfig() Config {
	return Config{
		Machines:    2,
		Iterations:  2,
		Cores:       12,
		DomainBytes: units.GiB,
		HaloBytes:   32 * units.MiB,
		CompNode:    0,
		CommNode:    0,
		Schedule:    Overlap,
	}
}

func henriModel(t *testing.T) model.Model {
	t.Helper()
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunSequentialAndOverlap(t *testing.T) {
	cfgSeq := baseConfig()
	cfgSeq.Schedule = Sequential
	seq, err := Run(henriCluster(2), cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	ovl, err := Run(henriCluster(2), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if seq.SimTime <= 0 || ovl.SimTime <= 0 {
		t.Fatal("simulated times must be positive")
	}
	// Overlap must beat sequential (the point of the technique), but
	// not by more than the halo cost (contention limits the win).
	if ovl.SimTime >= seq.SimTime {
		t.Errorf("overlap (%.4fs) must beat sequential (%.4fs)", ovl.SimTime, seq.SimTime)
	}
	if ovl.PerIteration*float64(baseConfig().Iterations) != ovl.SimTime {
		t.Error("per-iteration accounting wrong")
	}
}

func TestOverlapIsNotFree(t *testing.T) {
	// With a memory-bound kernel, overlap does NOT fully hide the halo:
	// contention stretches the computation. Compare against an ideal
	// estimate from nominal bandwidths.
	cfg := baseConfig()
	cfg.Iterations = 1
	cfg.Cores = 14 // deep in the contended region on henri
	res, err := Run(henriCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal compute-alone time: 14 cores ≈ 66 GB/s aggregate.
	idealCompute := float64(cfg.DomainBytes) / (66 * units.BytesPerGB)
	if res.SimTime <= idealCompute {
		t.Errorf("contention must stretch the iteration beyond the compute-alone time (%.4fs vs %.4fs)",
			res.SimTime, idealCompute)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Machines = 1 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 99 },
		func(c *Config) { c.DomainBytes = 0 },
		func(c *Config) { c.HaloBytes = 0 },
		func(c *Config) { c.CompNode = 9 },
		func(c *Config) { c.Schedule = Schedule(9) },
	}
	for i, mut := range bad {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := Run(henriCluster(2), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPredictIteration(t *testing.T) {
	m := henriModel(t)
	a, err := PredictIteration(m, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.PredictedIter <= 0 || a.ComputeTime <= 0 || a.CommTime <= 0 {
		t.Fatalf("degenerate advice: %+v", a)
	}
	if a.PredictedIter != a.ComputeTime && a.PredictedIter != a.CommTime {
		t.Error("overlapped iteration must cost the max of the two components")
	}
}

func TestPredictionMatchesSimulation(t *testing.T) {
	// The model-predicted iteration time must track the DES-measured
	// one within ~25 %. Exactness is not expected: the model was
	// calibrated against a single receive stream, while the application
	// drives four NIC streams per rank (two sends + two receives) and
	// adds barriers and rendezvous latency — the §IV-C1 caveat that
	// "model predictions are only valid for the parameters of the
	// benchmarks used to instantiate the model".
	m := henriModel(t)
	cfg := baseConfig()
	cfg.Iterations = 4
	pred, err := PredictIteration(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(henriCluster(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := (res.PerIteration - pred.PredictedIter) / res.PerIteration
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("predicted %.4fs vs simulated %.4fs per iteration (%.0f%% off)",
			pred.PredictedIter, res.PerIteration, 100*rel)
	}
}

func TestAdviseBeatsNaive(t *testing.T) {
	// E16: the §VI use case. The advisor's configuration must deliver a
	// faster simulated application than the naive one. The domain is
	// sized so the iteration is compute-dominated — in comm-dominated
	// regimes the model's single-stream comm calibration under-predicts
	// the aggregate of the app's four NIC streams (§IV-C1 caveat) and
	// the advice degrades gracefully instead of winning.
	m := henriModel(t)
	plat := topology.Henri()
	base := baseConfig()
	base.Iterations = 3
	base.DomainBytes = 4 * units.GiB

	naiveCfg := NaiveConfig(plat, base)
	naive, err := Run(henriCluster(2), naiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	advice, err := Advise(m, plat, base)
	if err != nil {
		t.Fatal(err)
	}
	advisedCfg := base
	advisedCfg.Cores = advice.Cores
	advisedCfg.CompNode = advice.Placement.Comp
	advisedCfg.CommNode = advice.Placement.Comm
	advised, err := Run(henriCluster(2), advisedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if advised.SimTime >= naive.SimTime {
		t.Errorf("advised config (%.4fs) must beat naive (%.4fs); advice: %+v",
			advised.SimTime, naive.SimTime, advice)
	}
}

func TestAdviseValidation(t *testing.T) {
	m := henriModel(t)
	if _, err := Advise(m, nil, baseConfig()); err == nil {
		t.Error("nil platform must fail")
	}
}

func TestScheduleString(t *testing.T) {
	if Sequential.String() != "sequential" || Overlap.String() != "overlap" {
		t.Error("schedule names wrong")
	}
	if Schedule(9).String() == "" {
		t.Error("unknown schedule must render")
	}
}
