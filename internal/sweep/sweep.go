// Package sweep runs independent benchmark/evaluation jobs across a
// bounded worker pool. Simulations are deterministic and independent, so
// the only concurrency concern is result ordering — outputs are returned
// in input order regardless of completion order.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when workers <= 0.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Map applies fn to every item on a pool of workers and returns results in
// input order. The first error aborts scheduling of new work (in-flight
// jobs finish) and is returned joined with any other errors.
func Map[T, R any](items []T, workers int, fn func(T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), items, workers, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done no new
// item is scheduled (in-flight jobs finish — fn observes ctx itself if it
// wants to stop earlier) and the context error is reported alongside any
// job errors. Campaign drivers rely on this to stop at a unit boundary on
// SIGINT with every completed unit already journaled.
func MapCtx[T, R any](ctx context.Context, items []T, workers int, fn func(T) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, errors.New("sweep: nil function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}

	type job struct{ idx int }
	jobs := make(chan job)
	var (
		mu     sync.Mutex
		errs   []error
		failed bool
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := safeCall(fn, items[j.idx])
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("item %d: %w", j.idx, err))
					failed = true
				} else {
					results[j.idx] = r
				}
				mu.Unlock()
			}
		}()
	}
	var ctxErr error
scheduling:
	for i := range items {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break
		}
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break scheduling
		case jobs <- job{idx: i}:
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		errs = append([]error{ctxErr}, errs...)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return results, nil
}

// Each is Map without results.
func Each[T any](items []T, workers int, fn func(T) error) error {
	_, err := Map(items, workers, func(t T) (struct{}, error) {
		return struct{}{}, fn(t)
	})
	return err
}

// safeCall converts panics in worker functions into errors so one bad item
// cannot take down the whole sweep.
func safeCall[T, R any](fn func(T) (R, error), item T) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sweep: panic: %v", p)
		}
	}()
	return fn(item)
}
