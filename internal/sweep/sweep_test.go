package sweep

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(items, 8, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d (order must be preserved)", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(nil, 4, func(x int) (int, error) { return x, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("empty map = (%v, %v)", got, err)
	}
}

func TestMapNilFunc(t *testing.T) {
	if _, err := Map([]int{1}, 1, (func(int) (int, error))(nil)); err == nil {
		t.Error("nil function must error")
	}
}

func TestMapErrorAborts(t *testing.T) {
	var calls atomic.Int32
	sentinel := errors.New("boom")
	_, err := Map(make([]int, 1000), 2, func(int) (int, error) {
		n := calls.Add(1)
		if n == 3 {
			return 0, sentinel
		}
		return 0, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if c := calls.Load(); c >= 1000 {
		t.Errorf("scheduling must abort after the failure, ran %d jobs", c)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map([]int{1, 2, 3}, 2, func(x int) (int, error) {
		if x == 2 {
			panic("kaboom")
		}
		return x, nil
	})
	if err == nil {
		t.Fatal("panic must surface as error")
	}
	if got := err.Error(); !strings.Contains(got, "kaboom") {
		t.Errorf("panic message lost: %v", got)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each([]int{1, 2, 3, 4}, 2, func(x int) error {
		sum.Add(int64(x))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 10 {
		t.Errorf("sum = %d", sum.Load())
	}
	if err := Each([]int{1}, 1, func(int) error { return errors.New("e") }); err == nil {
		t.Error("Each must propagate errors")
	}
}

func TestWorkerClamping(t *testing.T) {
	// More workers than items and non-positive workers must both work.
	for _, workers := range []int{-1, 0, 1, 100} {
		got, err := Map([]int{1, 2}, workers, func(x int) (int, error) { return x + 1, nil })
		if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 3 {
			t.Errorf("workers=%d: got %v, %v", workers, got, err)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be at least 1")
	}
}

func TestMapCtxCanceledStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	items := make([]int, 100)
	_, err := MapCtx(ctx, items, 1, func(int) (int, error) {
		n := started.Add(1)
		if n == 3 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The worker may have drained at most a couple of already-queued
	// jobs past the cancellation point, never the whole input.
	if n := started.Load(); n > 6 {
		t.Fatalf("%d jobs ran after cancellation", n)
	}
}

func TestMapCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := MapCtx(ctx, []int{1, 2, 3}, 2, func(int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-canceled context still ran jobs")
	}
}

func TestMapCtxNilContext(t *testing.T) {
	out, err := MapCtx(nil, []int{1, 2}, 2, func(v int) (int, error) { return v * 2, nil })
	if err != nil || len(out) != 2 || out[0] != 2 || out[1] != 4 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
