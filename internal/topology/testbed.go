package topology

import (
	"fmt"
	"sort"
)

// This file encodes Table I of the paper: the six testbed platforms.
// Memory sizes, core counts, NUMA splits, vendors and fabrics follow the
// table; NIC attachment follows the observations of §IV-B (e.g. diablo's
// NIC sits next to the second socket's NUMA node, explaining the 12.1 vs
// 22.4 GB/s locality split).

// Henri is the 2-NUMA-node configuration of the henri platform:
// 2 × Intel Xeon Gold 6140 (18 cores), 96 GB, InfiniBand.
func Henri() *Platform {
	return NewBuilder("henri").
		CPU(Intel, "Xeon Gold 6140 @ 2.30GHz, 18 cores").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(18).
		MemoryPerNodeGB(48).
		NICOn("ConnectX-4 EDR", InfiniBand, 1, 3).
		LinkName("UPI").
		MustBuild()
}

// HenriSubnuma is the same machine with sub-NUMA clustering enabled:
// 4 NUMA nodes (2 per socket).
func HenriSubnuma() *Platform {
	return NewBuilder("henri-subnuma").
		CPU(Intel, "Xeon Gold 6140 @ 2.30GHz, 18 cores").
		Sockets(2).NodesPerSocket(2).CoresPerSocket(18).
		MemoryPerNodeGB(24).
		NICOn("ConnectX-4 EDR", InfiniBand, 2, 3).
		LinkName("UPI").
		MustBuild()
}

// Dahu: 2 × Intel Xeon Gold 6130 (16 cores), 192 GB, Omni-Path.
func Dahu() *Platform {
	return NewBuilder("dahu").
		CPU(Intel, "Xeon Gold 6130 @ 2.10GHz, 16 cores").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(16).
		MemoryPerNodeGB(96).
		NICOn("Omni-Path HFI", OmniPath, 1, 3).
		LinkName("UPI").
		MustBuild()
}

// Diablo: 2 × AMD EPYC 7452 (32 cores), 256 GB, InfiniBand. The NIC is
// plugged next to the second socket; §IV-B(c) reports 22.4 GB/s with
// communication data on that node vs 12.1 GB/s on the other one.
func Diablo() *Platform {
	return NewBuilder("diablo").
		CPU(AMD, "EPYC 7452 @ 2.35GHz, 32 cores").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(32).
		MemoryPerNodeGB(128).
		NICOn("ConnectX-6 HDR", InfiniBand, 1, 4).
		LinkName("Infinity Fabric").
		MustBuild()
}

// Pyxis: 2 × Cavium ThunderX2 99xx (32 cores), 256 GB, InfiniBand.
func Pyxis() *Platform {
	return NewBuilder("pyxis").
		CPU(Cavium, "ThunderX2 99xx @ 2.20GHz, 32 cores").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(32).
		MemoryPerNodeGB(128).
		NICOn("ConnectX-5 EDR", InfiniBand, 1, 3).
		LinkName("CCPI2").
		MustBuild()
}

// Occigen: 2 × Intel Xeon E5-2690v4 (14 cores), 64 GB, InfiniBand. The
// paper's only production platform (2014–2022) and the one the model
// predicts best.
func Occigen() *Platform {
	return NewBuilder("occigen").
		CPU(Intel, "Xeon E5-2690v4 @ 2.60GHz, 14 cores").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(14).
		MemoryPerNodeGB(32).
		NICOn("ConnectX-3 FDR", InfiniBand, 1, 3).
		LinkName("QPI").
		MustBuild()
}

// Testbed returns every platform of Table I, in the table's order.
func Testbed() []*Platform {
	return []*Platform{Henri(), HenriSubnuma(), Dahu(), Diablo(), Pyxis(), Occigen()}
}

// Names returns the sorted names of the built-in platforms.
func Names() []string {
	ps := Testbed()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// ByName returns the built-in platform with the given name.
func ByName(name string) (*Platform, error) {
	for _, p := range Testbed() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("topology: unknown platform %q (known: %v)", name, Names())
}
