// Package topology describes the hardware structure of a machine the way
// hwloc exposes it to the paper's benchmark: sockets, NUMA nodes, cores,
// the network interface and the inter-socket interconnect.
//
// A Platform is purely structural — capacities and contention behaviour
// live in internal/memsys. This mirrors the paper's separation between the
// machine topology (Table I, an input of the model) and the measured
// bandwidths (outputs of the benchmark).
//
// Node numbering convention (used by the model's placement equations 6–7):
// NUMA nodes are numbered socket-major, so nodes 0..#m-1 belong to socket 0
// (“local” to the computing cores, which the paper always places on socket
// 0) and nodes #m..2#m-1 belong to socket 1 (“remote”).
package topology

import (
	"errors"
	"fmt"
	"strings"
)

// CoreID identifies a physical core, numbered 0..NCores-1 socket-major.
type CoreID int

// NodeID identifies a NUMA node, numbered 0..NNodes-1 socket-major.
type NodeID int

// SocketID identifies a processor package.
type SocketID int

// NetworkTech is the fabric family of the machine's NIC.
type NetworkTech string

// Network technologies present in the paper's testbed (Table I).
const (
	InfiniBand NetworkTech = "InfiniBand"
	OmniPath   NetworkTech = "Omni-Path"
)

// Vendor is the processor manufacturer, which determines the name of the
// inter-socket link (UPI on Intel, Infinity Fabric on AMD, CCPI on Cavium).
type Vendor string

// Vendors present in the paper's testbed.
const (
	Intel  Vendor = "INTEL"
	AMD    Vendor = "AMD"
	Cavium Vendor = "CAVIUM-ARM"
)

// Core is one physical processing unit. Hyperthreads are not modelled: the
// paper binds one software thread per physical core and never uses the
// second hyperthread.
type Core struct {
	ID     CoreID   `json:"id"`
	Socket SocketID `json:"socket"`
	// Node is the NUMA node whose memory is local to this core.
	Node NodeID `json:"node"`
}

// NUMANode is one memory bank with its controller.
type NUMANode struct {
	ID       NodeID   `json:"id"`
	Socket   SocketID `json:"socket"`
	MemoryGB int      `json:"memory_gb"`
}

// Socket is one processor package.
type Socket struct {
	ID    SocketID `json:"id"`
	Model string   `json:"model"`
	Cores []CoreID `json:"cores"`
	Nodes []NodeID `json:"nodes"`
}

// NIC is the network interface, attached through PCIe to one socket; the
// NUMA node it is closest to matters for communication locality (§IV-B(c)).
type NIC struct {
	Name    string      `json:"name"`
	Tech    NetworkTech `json:"tech"`
	Socket  SocketID    `json:"socket"`
	Node    NodeID      `json:"node"`
	PCIeGen int         `json:"pcie_gen"`
}

// Interconnect is the inter-socket link of Figure 1 (UPI / Infinity Fabric).
type Interconnect struct {
	Name string `json:"name"`
}

// Platform is a complete machine description, the structural part of one
// row of Table I.
type Platform struct {
	Name    string       `json:"name"`
	Vendor  Vendor       `json:"vendor"`
	CPUName string       `json:"cpu"`
	Sockets []Socket     `json:"sockets"`
	Nodes   []NUMANode   `json:"nodes"`
	Cores   []Core       `json:"cores"`
	NIC     NIC          `json:"nic"`
	Link    Interconnect `json:"link"`
}

// NSockets reports the number of sockets.
func (p *Platform) NSockets() int { return len(p.Sockets) }

// NNodes reports the total number of NUMA nodes.
func (p *Platform) NNodes() int { return len(p.Nodes) }

// NCores reports the total number of cores.
func (p *Platform) NCores() int { return len(p.Cores) }

// NodesPerSocket reports #m, the number of NUMA nodes per socket, used by
// the placement equations (6)–(7).
func (p *Platform) NodesPerSocket() int {
	if len(p.Sockets) == 0 {
		return 0
	}
	return len(p.Sockets[0].Nodes)
}

// CoresPerSocket reports the number of cores of socket 0, the range of the
// benchmark's computing-core sweep.
func (p *Platform) CoresPerSocket() int {
	if len(p.Sockets) == 0 {
		return 0
	}
	return len(p.Sockets[0].Cores)
}

// SocketOfNode reports the socket owning node n.
func (p *Platform) SocketOfNode(n NodeID) (SocketID, error) {
	if int(n) < 0 || int(n) >= len(p.Nodes) {
		return 0, fmt.Errorf("topology: node %d out of range [0,%d)", n, len(p.Nodes))
	}
	return p.Nodes[n].Socket, nil
}

// NodeOfCore reports the NUMA node local to core c.
func (p *Platform) NodeOfCore(c CoreID) (NodeID, error) {
	if int(c) < 0 || int(c) >= len(p.Cores) {
		return 0, fmt.Errorf("topology: core %d out of range [0,%d)", c, len(p.Cores))
	}
	return p.Cores[c].Node, nil
}

// IsLocalNode reports whether node n is local to the computing socket
// (socket 0), i.e. n < #m in the model's placement equations.
func (p *Platform) IsLocalNode(n NodeID) bool {
	return int(n) < p.NodesPerSocket()
}

// LocalNodes returns the NUMA nodes of socket 0 in id order.
func (p *Platform) LocalNodes() []NodeID {
	out := make([]NodeID, 0, p.NodesPerSocket())
	for _, nd := range p.Nodes {
		if nd.Socket == 0 {
			out = append(out, nd.ID)
		}
	}
	return out
}

// RemoteNodes returns the NUMA nodes not on socket 0 in id order.
func (p *Platform) RemoteNodes() []NodeID {
	out := make([]NodeID, 0, p.NNodes()-p.NodesPerSocket())
	for _, nd := range p.Nodes {
		if nd.Socket != 0 {
			out = append(out, nd.ID)
		}
	}
	return out
}

// CoresOfSocket returns the cores of socket s in id order.
func (p *Platform) CoresOfSocket(s SocketID) []CoreID {
	for _, sk := range p.Sockets {
		if sk.ID == s {
			return append([]CoreID(nil), sk.Cores...)
		}
	}
	return nil
}

// SameSocket reports whether two NUMA nodes share a socket.
func (p *Platform) SameSocket(a, b NodeID) bool {
	sa, errA := p.SocketOfNode(a)
	sb, errB := p.SocketOfNode(b)
	return errA == nil && errB == nil && sa == sb
}

// CrossesLink reports whether a memory access from socket s to node n has
// to traverse the inter-socket interconnect.
func (p *Platform) CrossesLink(s SocketID, n NodeID) bool {
	sn, err := p.SocketOfNode(n)
	return err == nil && sn != s
}

// TotalMemoryGB reports the machine's memory size (Table I "Memory" column).
func (p *Platform) TotalMemoryGB() int {
	total := 0
	for _, nd := range p.Nodes {
		total += nd.MemoryGB
	}
	return total
}

// Validate checks the structural invariants every Platform must satisfy.
func (p *Platform) Validate() error {
	var errs []error
	if p.Name == "" {
		errs = append(errs, errors.New("empty platform name"))
	}
	if len(p.Sockets) == 0 {
		errs = append(errs, errors.New("no sockets"))
	}
	if len(p.Nodes) == 0 {
		errs = append(errs, errors.New("no NUMA nodes"))
	}
	if len(p.Cores) == 0 {
		errs = append(errs, errors.New("no cores"))
	}
	// Socket-major, dense numbering.
	for i, c := range p.Cores {
		if int(c.ID) != i {
			errs = append(errs, fmt.Errorf("core %d has id %d (must be dense, socket-major)", i, c.ID))
		}
		if int(c.Socket) < 0 || int(c.Socket) >= len(p.Sockets) {
			errs = append(errs, fmt.Errorf("core %d references socket %d out of range", i, c.Socket))
			continue
		}
		if int(c.Node) < 0 || int(c.Node) >= len(p.Nodes) {
			errs = append(errs, fmt.Errorf("core %d references node %d out of range", i, c.Node))
			continue
		}
		if p.Nodes[c.Node].Socket != c.Socket {
			errs = append(errs, fmt.Errorf("core %d on socket %d has local node %d on socket %d", i, c.Socket, c.Node, p.Nodes[c.Node].Socket))
		}
	}
	for i, nd := range p.Nodes {
		if int(nd.ID) != i {
			errs = append(errs, fmt.Errorf("node %d has id %d (must be dense)", i, nd.ID))
		}
		if int(nd.Socket) < 0 || int(nd.Socket) >= len(p.Sockets) {
			errs = append(errs, fmt.Errorf("node %d references socket %d out of range", i, nd.Socket))
		}
		if nd.MemoryGB <= 0 {
			errs = append(errs, fmt.Errorf("node %d has non-positive memory", i))
		}
	}
	perSocketNodes := -1
	for i, sk := range p.Sockets {
		if int(sk.ID) != i {
			errs = append(errs, fmt.Errorf("socket %d has id %d (must be dense)", i, sk.ID))
		}
		if perSocketNodes == -1 {
			perSocketNodes = len(sk.Nodes)
		} else if len(sk.Nodes) != perSocketNodes {
			errs = append(errs, fmt.Errorf("socket %d has %d nodes, socket 0 has %d (model requires symmetric sockets)", i, len(sk.Nodes), perSocketNodes))
		}
		for _, c := range sk.Cores {
			if int(c) < 0 || int(c) >= len(p.Cores) {
				errs = append(errs, fmt.Errorf("socket %d lists core %d out of range", i, c))
			} else if p.Cores[c].Socket != sk.ID {
				errs = append(errs, fmt.Errorf("socket %d lists core %d which belongs to socket %d", i, c, p.Cores[c].Socket))
			}
		}
		for _, n := range sk.Nodes {
			if int(n) < 0 || int(n) >= len(p.Nodes) {
				errs = append(errs, fmt.Errorf("socket %d lists node %d out of range", i, n))
			} else if p.Nodes[n].Socket != sk.ID {
				errs = append(errs, fmt.Errorf("socket %d lists node %d which belongs to socket %d", i, n, p.Nodes[n].Socket))
			}
		}
	}
	// Socket-major node numbering: all nodes of socket k come before socket k+1.
	for i := 1; i < len(p.Nodes); i++ {
		if p.Nodes[i].Socket < p.Nodes[i-1].Socket {
			errs = append(errs, fmt.Errorf("node numbering not socket-major at node %d", i))
			break
		}
	}
	if int(p.NIC.Socket) < 0 || int(p.NIC.Socket) >= len(p.Sockets) {
		errs = append(errs, fmt.Errorf("NIC attached to socket %d out of range", p.NIC.Socket))
	}
	if int(p.NIC.Node) < 0 || int(p.NIC.Node) >= len(p.Nodes) {
		errs = append(errs, fmt.Errorf("NIC attached to node %d out of range", p.NIC.Node))
	} else if int(p.NIC.Socket) >= 0 && int(p.NIC.Socket) < len(p.Sockets) && p.Nodes[p.NIC.Node].Socket != p.NIC.Socket {
		errs = append(errs, fmt.Errorf("NIC node %d not on NIC socket %d", p.NIC.Node, p.NIC.Socket))
	}
	return errors.Join(errs...)
}

// String renders a short lstopo-style summary.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d × %s, %d cores, %d NUMA nodes, %d GB, %s via %s(node %d), link %s",
		p.Name, p.NSockets(), p.CPUName, p.NCores(), p.NNodes(), p.TotalMemoryGB(),
		p.NIC.Tech, p.NIC.Name, p.NIC.Node, p.Link.Name)
	return b.String()
}

// Describe renders a multi-line human-readable description, used by
// cmd/platforms.
func (p *Platform) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Platform %s (%s)\n", p.Name, p.Vendor)
	fmt.Fprintf(&b, "  CPU:    %d × %s (%d cores/socket)\n", p.NSockets(), p.CPUName, p.CoresPerSocket())
	fmt.Fprintf(&b, "  Memory: %d GB over %d NUMA nodes (%d per socket)\n", p.TotalMemoryGB(), p.NNodes(), p.NodesPerSocket())
	fmt.Fprintf(&b, "  NIC:    %s (%s), socket %d, NUMA node %d, PCIe gen%d\n", p.NIC.Name, p.NIC.Tech, p.NIC.Socket, p.NIC.Node, p.NIC.PCIeGen)
	fmt.Fprintf(&b, "  Link:   %s\n", p.Link.Name)
	for _, sk := range p.Sockets {
		fmt.Fprintf(&b, "  Socket %d: cores %d-%d, nodes %v\n", sk.ID, sk.Cores[0], sk.Cores[len(sk.Cores)-1], sk.Nodes)
	}
	return b.String()
}

// Builder assembles symmetric dual-style platforms with dense numbering.
// It covers every shape in the paper's testbed (N sockets × M nodes × C
// cores, all symmetric).
type Builder struct {
	name           string
	vendor         Vendor
	cpu            string
	sockets        int
	nodesPerSocket int
	coresPerSocket int
	memoryPerNode  int
	nic            NIC
	link           Interconnect
}

// NewBuilder starts a platform description.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, sockets: 2, nodesPerSocket: 1}
}

// CPU sets vendor and model string.
func (b *Builder) CPU(v Vendor, model string) *Builder {
	b.vendor, b.cpu = v, model
	return b
}

// Sockets sets the socket count (the testbed is always 2).
func (b *Builder) Sockets(n int) *Builder { b.sockets = n; return b }

// NodesPerSocket sets #m.
func (b *Builder) NodesPerSocket(n int) *Builder { b.nodesPerSocket = n; return b }

// CoresPerSocket sets the per-socket core count.
func (b *Builder) CoresPerSocket(n int) *Builder { b.coresPerSocket = n; return b }

// MemoryPerNodeGB sets each NUMA node's memory size.
func (b *Builder) MemoryPerNodeGB(gb int) *Builder { b.memoryPerNode = gb; return b }

// NICOn attaches the NIC.
func (b *Builder) NICOn(name string, tech NetworkTech, node NodeID, pcieGen int) *Builder {
	b.nic = NIC{Name: name, Tech: tech, Node: node, PCIeGen: pcieGen}
	return b
}

// LinkName names the inter-socket interconnect.
func (b *Builder) LinkName(name string) *Builder {
	b.link = Interconnect{Name: name}
	return b
}

// Build assembles and validates the platform.
func (b *Builder) Build() (*Platform, error) {
	p := &Platform{
		Name:    b.name,
		Vendor:  b.vendor,
		CPUName: b.cpu,
		NIC:     b.nic,
		Link:    b.link,
	}
	coreID := CoreID(0)
	nodeID := NodeID(0)
	for s := 0; s < b.sockets; s++ {
		sk := Socket{ID: SocketID(s), Model: b.cpu}
		for m := 0; m < b.nodesPerSocket; m++ {
			p.Nodes = append(p.Nodes, NUMANode{ID: nodeID, Socket: sk.ID, MemoryGB: b.memoryPerNode})
			sk.Nodes = append(sk.Nodes, nodeID)
			nodeID++
		}
		for c := 0; c < b.coresPerSocket; c++ {
			// Cores are spread evenly over the socket's NUMA nodes,
			// first-node-first, matching sub-NUMA clustering.
			local := sk.Nodes[c*b.nodesPerSocket/b.coresPerSocket]
			p.Cores = append(p.Cores, Core{ID: coreID, Socket: sk.ID, Node: local})
			sk.Cores = append(sk.Cores, coreID)
			coreID++
		}
		p.Sockets = append(p.Sockets, sk)
	}
	// NIC socket is derived from its node.
	if int(p.NIC.Node) < len(p.Nodes) {
		p.NIC.Socket = p.Nodes[p.NIC.Node].Socket
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("topology: build %s: %w", b.name, err)
	}
	return p, nil
}

// MustBuild is Build for the package's own platform constructors.
func (b *Builder) MustBuild() *Platform {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
