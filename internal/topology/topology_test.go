package topology

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	p, err := NewBuilder("test").
		CPU(Intel, "Test CPU").
		Sockets(2).NodesPerSocket(2).CoresPerSocket(8).
		MemoryPerNodeGB(16).
		NICOn("nic0", InfiniBand, 2, 3).
		LinkName("UPI").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NSockets() != 2 || p.NNodes() != 4 || p.NCores() != 16 {
		t.Fatalf("unexpected shape: %d sockets, %d nodes, %d cores", p.NSockets(), p.NNodes(), p.NCores())
	}
	if p.NodesPerSocket() != 2 || p.CoresPerSocket() != 8 {
		t.Fatalf("per-socket counts wrong: %d nodes, %d cores", p.NodesPerSocket(), p.CoresPerSocket())
	}
	if p.TotalMemoryGB() != 64 {
		t.Errorf("TotalMemoryGB = %d, want 64", p.TotalMemoryGB())
	}
	// NIC socket derived from its node.
	if p.NIC.Socket != 1 {
		t.Errorf("NIC on node 2 must sit on socket 1, got %d", p.NIC.Socket)
	}
}

func TestSocketMajorNumbering(t *testing.T) {
	p := HenriSubnuma()
	// Nodes 0,1 on socket 0; nodes 2,3 on socket 1.
	for node, wantSocket := range map[NodeID]SocketID{0: 0, 1: 0, 2: 1, 3: 1} {
		got, err := p.SocketOfNode(node)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantSocket {
			t.Errorf("node %d on socket %d, want %d", node, got, wantSocket)
		}
	}
	// Cores 0..17 on socket 0, spread over nodes 0 and 1.
	n0, err := p.NodeOfCore(0)
	if err != nil || n0 != 0 {
		t.Errorf("core 0 local node = %d (%v), want 0", n0, err)
	}
	n17, err := p.NodeOfCore(17)
	if err != nil || n17 != 1 {
		t.Errorf("core 17 local node = %d (%v), want 1", n17, err)
	}
}

func TestLocalRemoteNodes(t *testing.T) {
	p := Henri()
	if !p.IsLocalNode(0) || p.IsLocalNode(1) {
		t.Error("node 0 must be local, node 1 remote (henri)")
	}
	if got := p.LocalNodes(); len(got) != 1 || got[0] != 0 {
		t.Errorf("LocalNodes = %v", got)
	}
	if got := p.RemoteNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("RemoteNodes = %v", got)
	}
}

func TestCrossesLink(t *testing.T) {
	p := Henri()
	if p.CrossesLink(0, 0) {
		t.Error("socket 0 to node 0 must not cross the link")
	}
	if !p.CrossesLink(0, 1) {
		t.Error("socket 0 to node 1 must cross the link")
	}
	if p.CrossesLink(1, 1) {
		t.Error("socket 1 to node 1 must not cross the link")
	}
}

func TestSameSocket(t *testing.T) {
	p := HenriSubnuma()
	if !p.SameSocket(0, 1) || !p.SameSocket(2, 3) {
		t.Error("intra-socket node pairs must share a socket")
	}
	if p.SameSocket(1, 2) {
		t.Error("nodes 1 and 2 are on different sockets")
	}
}

func TestCoresOfSocket(t *testing.T) {
	p := Dahu()
	c0 := p.CoresOfSocket(0)
	c1 := p.CoresOfSocket(1)
	if len(c0) != 16 || len(c1) != 16 {
		t.Fatalf("dahu must have 16 cores per socket, got %d/%d", len(c0), len(c1))
	}
	if c0[0] != 0 || c1[0] != 16 {
		t.Errorf("socket core ranges wrong: %v %v", c0[0], c1[0])
	}
	if p.CoresOfSocket(9) != nil {
		t.Error("unknown socket must return nil")
	}
}

// TestTestbedMatchesTable1 pins the structural facts of Table I.
func TestTestbedMatchesTable1(t *testing.T) {
	cases := []struct {
		plat     *Platform
		cores    int // per socket
		nodes    int // total
		memGB    int
		tech     NetworkTech
		vendor   Vendor
		linkName string
	}{
		{Henri(), 18, 2, 96, InfiniBand, Intel, "UPI"},
		{HenriSubnuma(), 18, 4, 96, InfiniBand, Intel, "UPI"},
		{Dahu(), 16, 2, 192, OmniPath, Intel, "UPI"},
		{Diablo(), 32, 2, 256, InfiniBand, AMD, "Infinity Fabric"},
		{Pyxis(), 32, 2, 256, InfiniBand, Cavium, "CCPI2"},
		{Occigen(), 14, 2, 64, InfiniBand, Intel, "QPI"},
	}
	for _, c := range cases {
		p := c.plat
		if p.CoresPerSocket() != c.cores {
			t.Errorf("%s: %d cores/socket, want %d", p.Name, p.CoresPerSocket(), c.cores)
		}
		if p.NNodes() != c.nodes {
			t.Errorf("%s: %d nodes, want %d", p.Name, p.NNodes(), c.nodes)
		}
		if p.TotalMemoryGB() != c.memGB {
			t.Errorf("%s: %d GB, want %d", p.Name, p.TotalMemoryGB(), c.memGB)
		}
		if p.NIC.Tech != c.tech {
			t.Errorf("%s: %s network, want %s", p.Name, p.NIC.Tech, c.tech)
		}
		if p.Vendor != c.vendor {
			t.Errorf("%s: vendor %s, want %s", p.Name, p.Vendor, c.vendor)
		}
		if p.Link.Name != c.linkName {
			t.Errorf("%s: link %s, want %s", p.Name, p.Link.Name, c.linkName)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: validate: %v", p.Name, err)
		}
		if p.NSockets() != 2 {
			t.Errorf("%s: %d sockets, want 2", p.Name, p.NSockets())
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("pyxis")
	if err != nil || p.Name != "pyxis" {
		t.Fatalf("ByName(pyxis) = %v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown platform must error")
	}
	names := Names()
	if len(names) != 6 {
		t.Errorf("Names() has %d entries, want 6", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() must be sorted")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	corrupt := []struct {
		name string
		mut  func(*Platform)
	}{
		{"empty name", func(p *Platform) { p.Name = "" }},
		{"core socket out of range", func(p *Platform) { p.Cores[0].Socket = 9 }},
		{"core node mismatch", func(p *Platform) { p.Cores[0].Node = 1 }},
		{"node id not dense", func(p *Platform) { p.Nodes[0].ID = 5 }},
		{"node memory non-positive", func(p *Platform) { p.Nodes[0].MemoryGB = 0 }},
		{"NIC node out of range", func(p *Platform) { p.NIC.Node = 99 }},
		{"NIC socket/node mismatch", func(p *Platform) { p.NIC.Socket = 0 }},
		{"asymmetric sockets", func(p *Platform) { p.Sockets[1].Nodes = nil }},
		{"socket lists foreign core", func(p *Platform) { p.Sockets[0].Cores[0] = 20 }},
	}
	for _, c := range corrupt {
		p := Henri() // fresh copy each time
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Diablo()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Platform
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped platform invalid: %v", err)
	}
	if back.Name != p.Name || back.NCores() != p.NCores() || back.NIC != p.NIC {
		t.Error("JSON round trip lost data")
	}
}

func TestDescribeAndString(t *testing.T) {
	p := Occigen()
	s := p.String()
	for _, want := range []string{"occigen", "InfiniBand", "QPI"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	d := p.Describe()
	for _, want := range []string{"Socket 0", "Socket 1", "NUMA"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q", want)
		}
	}
}

func TestBuildRejectsBadNIC(t *testing.T) {
	_, err := NewBuilder("bad").
		CPU(Intel, "x").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(4).
		MemoryPerNodeGB(8).
		NICOn("nic", InfiniBand, 7, 3). // node 7 does not exist
		LinkName("UPI").
		Build()
	if err == nil {
		t.Error("builder must reject NIC on nonexistent node")
	}
}

func TestOutOfRangeQueries(t *testing.T) {
	p := Henri()
	if _, err := p.SocketOfNode(9); err == nil {
		t.Error("SocketOfNode out of range must error")
	}
	if _, err := p.NodeOfCore(99); err == nil {
		t.Error("NodeOfCore out of range must error")
	}
}
