package trace

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL fuzzes the trace-file loader memprof uses. The invariants:
// the reader never panics on arbitrary input, and any trace it accepts
// canonicalises — re-encoding the decoded events yields output that reads
// back to the same event count and re-encodes byte-identically (the
// stitching guarantee).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"kind":"mark","at":0,"label":"hello"}` + "\n"))
	f.Add([]byte(`{"kind":"flow-start","at":0.1,"machine":1,"flow":1,"stream":"comm","node":0,"bytes":1048576}` + "\n" +
		`{"kind":"rate-change","at":0.1,"machine":1,"active":1,"rates":[{"flow":1,"gbps":10.5}]}` + "\n" +
		`{"kind":"flow-end","at":0.5,"machine":1,"flow":1,"rate":9.75}` + "\n"))
	f.Add([]byte(`{"kind":"span-begin","at":0,"span":1,"label":"rank 0","cat":"rank","rank":0}` + "\n" +
		`{"kind":"instant","at":0.2,"span":1,"label":"limited","cat":"flow"}` + "\n" +
		`{"kind":"span-end","at":0.7,"span":1}` + "\n"))
	f.Add([]byte(`{"kind":"flow-start","at":1e308,"flow":-1,"stream":"compute","node":-5,"bytes":-1,"demand":0.5}`))
	f.Add([]byte("\n\n{\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var canon bytes.Buffer
		if err := WriteEventsJSONL(&canon, events); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadJSONL(bytes.NewReader(canon.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, canon.String())
		}
		if len(again) != len(events) {
			t.Fatalf("canonical re-read changed event count: %d vs %d", len(again), len(events))
		}
		var second bytes.Buffer
		if err := WriteEventsJSONL(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", canon.String(), second.String())
		}
	})
}
