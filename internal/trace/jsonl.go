package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the machine-readable schema of one timeline event: one
// JSON object per line, fields present only when meaningful for the kind
// (see docs/observability.md for the schema table). Pointer fields keep
// zero values (flow 0, node 0, rate 0) distinguishable from absence, so
// the encoding is unambiguous and byte-stable across runs.
type jsonlEvent struct {
	Kind   string   `json:"kind"`
	At     float64  `json:"at"`
	Flow   *int     `json:"flow,omitempty"`
	Stream string   `json:"stream,omitempty"`
	Node   *int     `json:"node,omitempty"`
	Bytes  *float64 `json:"bytes,omitempty"`
	Rate   *float64 `json:"rate,omitempty"`
	Active *int     `json:"active,omitempty"`
	Label  string   `json:"label,omitempty"`
}

// WriteJSONL streams the timeline as JSON Lines, one event per line in
// recording (simulated-time) order. The output is deterministic: two runs
// with the same seed produce byte-identical traces, so traces can be
// diffed across runs. Line count equals EventCount.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.events {
		ev := &r.events[i]
		je := jsonlEvent{Kind: ev.Kind.String(), At: ev.At}
		switch ev.Kind {
		case FlowStart:
			flow, node, bytes := ev.FlowID, int(ev.Stream.Node), ev.Bytes
			je.Flow, je.Node, je.Bytes = &flow, &node, &bytes
			je.Stream = ev.Stream.Kind.String()
		case FlowEnd:
			flow, rate := ev.FlowID, ev.AvgRate
			je.Flow, je.Rate = &flow, &rate
		case RateChange:
			active := ev.ActiveFlows
			je.Active = &active
		case Mark, Fault, Checkpoint:
			je.Label = ev.Label
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
