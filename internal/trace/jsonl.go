package trace

import (
	"bufio"
	"encoding/json"
	"io"

	"memcontention/internal/obs"
)

// jsonlEvent is the machine-readable schema of one timeline event: one
// JSON object per line, fields present only when meaningful for the kind
// (see docs/observability.md for the schema table). Pointer fields keep
// zero values (flow 0, node 0, rate 0) distinguishable from absence, so
// the encoding is unambiguous and byte-stable across runs. Rank and node
// on span kinds use presence for "scoped" (rank 0 and node 0 are real),
// so the reader restores the -1 "not scoped" sentinel when absent.
type jsonlEvent struct {
	Kind    string     `json:"kind"`
	At      float64    `json:"at"`
	Machine *int       `json:"machine,omitempty"`
	Flow    *int       `json:"flow,omitempty"`
	Stream  string     `json:"stream,omitempty"`
	Node    *int       `json:"node,omitempty"`
	Bytes   *float64   `json:"bytes,omitempty"`
	Demand  *float64   `json:"demand,omitempty"`
	Rate    *float64   `json:"rate,omitempty"`
	Active  *int       `json:"active,omitempty"`
	Rates   []FlowRate `json:"rates,omitempty"`
	Span    *int64     `json:"span,omitempty"`
	Parent  *int64     `json:"parent,omitempty"`
	Cat     string     `json:"cat,omitempty"`
	Rank    *int       `json:"rank,omitempty"`
	Links   []string   `json:"links,omitempty"`
	Label   string     `json:"label,omitempty"`
}

// encode maps one Event to its wire form.
func encode(ev *Event) jsonlEvent {
	je := jsonlEvent{Kind: ev.Kind.String(), At: ev.At}
	machine := func(m int) {
		if m != 0 {
			v := m
			je.Machine = &v
		}
	}
	switch ev.Kind {
	case FlowStart:
		machine(ev.Machine)
		flow, node, bytes := ev.FlowID, int(ev.Stream.Node), ev.Bytes
		je.Flow, je.Node, je.Bytes = &flow, &node, &bytes
		je.Stream = ev.Stream.Kind.String()
		if ev.Stream.Demand != 0 {
			demand := ev.Stream.Demand
			je.Demand = &demand
		}
	case FlowEnd:
		machine(ev.Machine)
		flow, rate := ev.FlowID, ev.AvgRate
		je.Flow, je.Rate = &flow, &rate
	case RateChange:
		machine(ev.Machine)
		active := ev.ActiveFlows
		je.Active = &active
		je.Rates = ev.Rates
	case Mark, Fault, Checkpoint:
		je.Label = ev.Label
	case SpanBegin, Instant:
		machine(ev.Attrs.Machine)
		if ev.Span != 0 {
			span := int64(ev.Span)
			je.Span = &span
		}
		if ev.Parent != 0 {
			parent := int64(ev.Parent)
			je.Parent = &parent
		}
		je.Label, je.Cat = ev.Label, ev.Cat
		if ev.Attrs.Rank >= 0 {
			rank := ev.Attrs.Rank
			je.Rank = &rank
		}
		if ev.Attrs.Node >= 0 {
			node := ev.Attrs.Node
			je.Node = &node
		}
		if ev.Attrs.Flow > 0 {
			flow := ev.Attrs.Flow
			je.Flow = &flow
		}
		je.Stream = ev.Attrs.Stream
		je.Links = ev.Attrs.Links
	case SpanEnd:
		span := int64(ev.Span)
		je.Span = &span
	}
	return je
}

// WriteEventsJSONL streams events as JSON Lines, one per line, in slice
// order. The encoding is deterministic and round-trips through ReadJSONL
// byte-identically, which campaign trace stitching relies on.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(encode(&events[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL streams the timeline as JSON Lines, one event per line in
// recording (simulated-time) order. The output is deterministic: two runs
// with the same seed produce byte-identical traces, so traces can be
// diffed across runs. Line count equals EventCount.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	return WriteEventsJSONL(w, r.events)
}

// spanAttrs reassembles the attribution of a decoded span event.
func (je *jsonlEvent) spanAttrs() obs.SpanAttrs {
	attrs := obs.SpanAttrs{Rank: -1, Node: -1, Stream: je.Stream, Links: je.Links}
	if je.Machine != nil {
		attrs.Machine = *je.Machine
	}
	if je.Rank != nil {
		attrs.Rank = *je.Rank
	}
	if je.Node != nil {
		attrs.Node = *je.Node
	}
	if je.Flow != nil {
		attrs.Flow = *je.Flow
	}
	return attrs
}
