package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"memcontention/internal/memsys"
)

// TestZeroValueRecorderMarkFirst is the regression test for the
// zero-value Recorder: a Mark emitted before any flow starts used to
// panic on the nil flow map as soon as a flow arrived.
func TestZeroValueRecorderMarkFirst(t *testing.T) {
	var rec Recorder // zero value, not NewRecorder
	rec.MarkAt(0, "before anything")
	rec.FlowStarted(0, 1, memsys.Stream{Kind: memsys.KindComm, Node: 0}, 1024, 0)
	rec.FlowFinished(0, 1, 0.5, 2.0)
	if got := rec.EventCount(); got != 3 {
		t.Fatalf("events = %d, want 3", got)
	}
	if s := rec.Summarize(memsys.KindComm); s.Finished != 1 {
		t.Errorf("summary finished = %d, want 1", s.Finished)
	}
	if out := rec.Timeline(0); !strings.Contains(out, "before anything") {
		t.Errorf("timeline lost the mark:\n%s", out)
	}
}

// TestEmptyRecorderRenders is the regression test for the empty timeline:
// every renderer must produce sane output with zero events.
func TestEmptyRecorderRenders(t *testing.T) {
	rec := NewRecorder()
	if out := rec.Timeline(0); out != "(no events)\n" {
		t.Errorf("empty timeline = %q", out)
	}
	if out := rec.Gantt(40); out != "(no finished flows)\n" {
		t.Errorf("empty gantt = %q", out)
	}
	s := rec.Summarize(memsys.KindComm)
	if s.Flows != 0 || s.Finished != 0 || s.MinRate != 0 || s.MeanRate != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty JSONL = %q, want no output", buf.String())
	}
}

func TestJSONLSchemaAndCount(t *testing.T) {
	rec := recordedRun(t)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != rec.EventCount() {
		t.Fatalf("JSONL lines = %d, want %d (one per event)", len(lines), rec.EventCount())
	}
	kinds := map[string]int{}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, line)
		}
		kind, _ := ev["kind"].(string)
		kinds[kind]++
		if _, ok := ev["at"]; !ok {
			t.Fatalf("line %d has no timestamp: %s", i+1, line)
		}
		switch kind {
		case "flow-start":
			for _, field := range []string{"flow", "stream", "node", "bytes"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("flow-start line %d missing %q: %s", i+1, field, line)
				}
			}
		case "flow-end":
			for _, field := range []string{"flow", "rate"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("flow-end line %d missing %q: %s", i+1, field, line)
				}
			}
		case "rate-change":
			if _, ok := ev["active"]; !ok {
				t.Errorf("rate-change line %d missing active: %s", i+1, line)
			}
		case "mark":
			if _, ok := ev["label"]; !ok {
				t.Errorf("mark line %d missing label: %s", i+1, line)
			}
		default:
			t.Errorf("line %d has unknown kind %q", i+1, kind)
		}
	}
	if kinds["flow-start"] != 2 || kinds["flow-end"] != 2 || kinds["mark"] != 1 {
		t.Errorf("kind histogram %v, want 2 starts, 2 ends, 1 mark", kinds)
	}
}

// TestJSONLDeterministic runs the identical seeded simulation twice; the
// traces must be byte-identical so runs can be diffed.
func TestJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := recordedRun(t).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := recordedRun(t).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical runs produced different traces:\n%s\nvs\n%s", a.String(), b.String())
	}
}
