package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

// maxLineBytes bounds one JSONL line; a longer line means a corrupt or
// hostile file, not a trace.
const maxLineBytes = 1 << 20

// kindFromString is the inverse of EventKind.String for wire decoding.
func kindFromString(s string) (EventKind, bool) {
	switch s {
	case "flow-start":
		return FlowStart, true
	case "flow-end":
		return FlowEnd, true
	case "rate-change":
		return RateChange, true
	case "mark":
		return Mark, true
	case "fault":
		return Fault, true
	case "checkpoint":
		return Checkpoint, true
	case "span-begin":
		return SpanBegin, true
	case "span-end":
		return SpanEnd, true
	case "instant":
		return Instant, true
	default:
		return 0, false
	}
}

// streamKindFromString is the inverse of memsys.StreamKind.String.
func streamKindFromString(s string) (memsys.StreamKind, bool) {
	switch s {
	case "compute":
		return memsys.KindCompute, true
	case "comm":
		return memsys.KindComm, true
	default:
		return 0, false
	}
}

// ReadJSONL parses a JSONL trace back into events. It is the exact
// inverse of WriteEventsJSONL: writing the returned slice reproduces the
// input byte for byte, so loaded traces can be re-exported, stitched and
// diffed losslessly. Blank lines are skipped; anything else malformed
// (bad JSON, unknown kinds, non-finite numbers, oversized lines) is an
// error naming the offending line.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := decodeLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	return events, nil
}

// LoadJSONL reads a JSONL trace file.
func LoadJSONL(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// decodeLine parses one JSONL line into an Event.
func decodeLine(line []byte) (Event, error) {
	var je jsonlEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, err
	}
	kind, ok := kindFromString(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", je.Kind)
	}
	if !isFinite(je.At) {
		return Event{}, fmt.Errorf("non-finite timestamp %v", je.At)
	}
	ev := Event{At: je.At, Kind: kind}
	if je.Machine != nil && kind != SpanBegin && kind != Instant {
		ev.Machine = *je.Machine
	}
	switch kind {
	case FlowStart:
		if je.Flow == nil || je.Node == nil || je.Bytes == nil {
			return Event{}, fmt.Errorf("flow-start missing flow/node/bytes")
		}
		sk, ok := streamKindFromString(je.Stream)
		if !ok {
			return Event{}, fmt.Errorf("unknown stream kind %q", je.Stream)
		}
		if !isFinite(*je.Bytes) {
			return Event{}, fmt.Errorf("non-finite bytes %v", *je.Bytes)
		}
		ev.FlowID = *je.Flow
		ev.Bytes = *je.Bytes
		ev.Stream = memsys.Stream{ID: *je.Flow, Kind: sk, Node: topology.NodeID(*je.Node)}
		if je.Demand != nil {
			if !isFinite(*je.Demand) {
				return Event{}, fmt.Errorf("non-finite demand %v", *je.Demand)
			}
			ev.Stream.Demand = *je.Demand
		}
	case FlowEnd:
		if je.Flow == nil || je.Rate == nil {
			return Event{}, fmt.Errorf("flow-end missing flow/rate")
		}
		if !isFinite(*je.Rate) {
			return Event{}, fmt.Errorf("non-finite rate %v", *je.Rate)
		}
		ev.FlowID, ev.AvgRate = *je.Flow, *je.Rate
	case RateChange:
		if je.Active == nil {
			return Event{}, fmt.Errorf("rate-change missing active")
		}
		ev.ActiveFlows = *je.Active
		for _, fr := range je.Rates {
			if !isFinite(fr.GBps) {
				return Event{}, fmt.Errorf("non-finite flow rate %v", fr.GBps)
			}
		}
		ev.Rates = je.Rates
	case Mark, Fault, Checkpoint:
		ev.Label = je.Label
	case SpanBegin, Instant:
		if kind == SpanBegin && (je.Span == nil || *je.Span == 0) {
			return Event{}, fmt.Errorf("span-begin missing span id")
		}
		if je.Span != nil {
			ev.Span = obs.SpanID(*je.Span)
		}
		if je.Parent != nil {
			ev.Parent = obs.SpanID(*je.Parent)
		}
		ev.Label, ev.Cat = je.Label, je.Cat
		ev.Attrs = je.spanAttrs()
	case SpanEnd:
		if je.Span == nil || *je.Span == 0 {
			return Event{}, fmt.Errorf("span-end missing span id")
		}
		ev.Span = obs.SpanID(*je.Span)
	}
	return ev, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
