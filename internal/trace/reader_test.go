package trace

import (
	"bytes"
	"strings"
	"testing"

	"memcontention/internal/memsys"
	"memcontention/internal/obs"
)

// profiledEvents builds a timeline exercising every event kind and every
// optional field combination the wire format distinguishes.
func profiledEvents() []Event {
	return []Event{
		{At: 0, Kind: SpanBegin, Span: 1, Label: "rank 0", Cat: "rank", Attrs: obs.SpanAttrs{Rank: 0, Node: -1}},
		{At: 0, Kind: SpanBegin, Span: 2, Parent: 1, Label: "send→1", Cat: "mpi", Attrs: obs.SpanAttrs{Machine: 1, Rank: 0, Node: -1}},
		{At: 0.1, Kind: FlowStart, Machine: 1, FlowID: 1, Stream: memsys.Stream{ID: 1, Kind: memsys.KindComm, Node: 0}, Bytes: 1 << 20},
		{At: 0.1, Kind: SpanBegin, Span: 3, Parent: 2, Label: "flow #1", Cat: "flow",
			Attrs: obs.SpanAttrs{Machine: 1, Rank: -1, Flow: 1, Stream: "comm", Node: 0, Links: []string{"pcie", "node0"}}},
		{At: 0.1, Kind: RateChange, Machine: 1, ActiveFlows: 1, Rates: []FlowRate{{Flow: 1, GBps: 10.5}}},
		{At: 0.15, Kind: FlowStart, FlowID: 2, Stream: memsys.Stream{ID: 2, Kind: memsys.KindCompute, Node: 1, Demand: 5.25}, Bytes: 4096},
		{At: 0.2, Kind: Instant, Span: 3, Label: "limited", Cat: "flow", Attrs: obs.SpanAttrs{Machine: 1, Rank: -1, Node: -1}},
		{At: 0.3, Kind: Mark, Label: "phase"},
		{At: 0.4, Kind: Fault, Label: "nic-stall"},
		{At: 0.5, Kind: FlowEnd, Machine: 1, FlowID: 1, AvgRate: 9.75},
		{At: 0.5, Kind: FlowEnd, FlowID: 2, AvgRate: 1.0},
		{At: 0.5, Kind: RateChange, ActiveFlows: 0},
		{At: 0.6, Kind: SpanEnd, Span: 3},
		{At: 0.6, Kind: SpanEnd, Span: 2},
		{At: 0.7, Kind: SpanEnd, Span: 1},
		{At: 0.8, Kind: Checkpoint, Label: "interrupted"},
	}
}

// TestJSONLRoundTrip: write → read → write must be byte-identical, for
// every kind and field combination. Campaign resume stitches traces by
// re-reading per-unit files; any asymmetry here would corrupt merges.
func TestJSONLRoundTrip(t *testing.T) {
	events := profiledEvents()
	var first bytes.Buffer
	if err := WriteEventsJSONL(&first, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v\n%s", err, first.String())
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	var second bytes.Buffer
	if err := WriteEventsJSONL(&second, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestIngestReplay: replaying a recorded stream through a fresh recorder
// reconstructs the per-flow bookkeeping (Summarize works on the copy).
func TestIngestReplay(t *testing.T) {
	rec := recordedRun(t)
	replay := NewRecorder()
	replay.Ingest(rec.Events())
	for _, kind := range []memsys.StreamKind{memsys.KindComm, memsys.KindCompute} {
		a, b := rec.Summarize(kind), replay.Summarize(kind)
		if a != b {
			t.Errorf("%v summary diverged after replay:\n%+v\nvs\n%+v", kind, a, b)
		}
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	cases := []struct{ name, line string }{
		{"not json", "{"},
		{"unknown kind", `{"kind":"warp","at":0}`},
		{"missing kind", `{"at":0}`},
		{"flow-start no fields", `{"kind":"flow-start","at":0}`},
		{"flow-start bad stream", `{"kind":"flow-start","at":0,"flow":1,"stream":"dma","node":0,"bytes":1}`},
		{"flow-end no rate", `{"kind":"flow-end","at":0,"flow":1}`},
		{"rate-change no active", `{"kind":"rate-change","at":0}`},
		{"span-begin no id", `{"kind":"span-begin","at":0,"label":"x"}`},
		{"span-end no id", `{"kind":"span-end","at":0}`},
		{"huge line", `{"kind":"mark","at":0,"label":"` + strings.Repeat("x", maxLineBytes) + `"}`},
	}
	for _, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Blank lines are tolerated.
	evs, err := ReadJSONL(strings.NewReader("\n" + `{"kind":"mark","at":1,"label":"ok"}` + "\n\n"))
	if err != nil || len(evs) != 1 {
		t.Errorf("blank lines: events=%d err=%v", len(evs), err)
	}
}
