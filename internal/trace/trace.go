// Package trace records what happens inside a simulation: flow lifetimes,
// rate changes, and per-stream-kind accounting. It implements
// engine.FlowObserver, so attaching a Recorder to a machine's flow manager
// produces a timeline that can be rendered as text or summarised — the
// simulated equivalent of the execution traces the paper's authors used in
// their companion study of interferences.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/units"
)

// EventKind labels timeline entries.
type EventKind int

// Event kinds.
const (
	// FlowStart marks a transfer beginning.
	FlowStart EventKind = iota
	// FlowEnd marks a transfer draining.
	FlowEnd
	// RateChange marks a re-solve of the active rates.
	RateChange
	// Mark is a user annotation (phase boundaries etc.).
	Mark
	// Fault is a fault-injection event (link degraded, node crashed,
	// message dropped, ...) recorded by the faults layer.
	Fault
	// Checkpoint marks a graceful interruption: the run stopped here with
	// all completed units journaled, ready to be resumed.
	Checkpoint
	// SpanBegin opens a causal span (an MPI operation, a fabric transfer,
	// a memory flow, a compute phase) recorded by internal/prof.
	SpanBegin
	// SpanEnd closes a causal span.
	SpanEnd
	// Instant is a point-in-time profiler annotation carrying resource
	// attribution (unlike Mark, which is a bare label).
	Instant
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case FlowStart:
		return "flow-start"
	case FlowEnd:
		return "flow-end"
	case RateChange:
		return "rate-change"
	case Mark:
		return "mark"
	case Fault:
		return "fault"
	case Checkpoint:
		return "checkpoint"
	case SpanBegin:
		return "span-begin"
	case SpanEnd:
		return "span-end"
	case Instant:
		return "instant"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// TruncatedLabel is the Mark label recorded when MaxEvents drops events:
// analyses must refuse to attribute bandwidth on a truncated timeline.
const TruncatedLabel = "truncated"

// FlowRate is one flow's solver-granted (and limiter-applied) rate at a
// RateChange, in GB/s. Rate lists are sorted by flow id so encodings are
// deterministic.
type FlowRate struct {
	Flow int     `json:"flow"`
	GBps float64 `json:"gbps"`
}

// Event is one timeline entry.
type Event struct {
	At   float64 // simulated seconds
	Kind EventKind
	// Machine is the simulated machine the event belongs to for flow and
	// rate kinds (0 for single-machine runs; span kinds carry theirs in
	// Attrs.Machine).
	Machine int
	// FlowID identifies the flow for FlowStart/FlowEnd.
	FlowID int
	// Stream describes the flow (FlowStart only).
	Stream memsys.Stream
	// Bytes is the transfer size (FlowStart) in bytes.
	Bytes float64
	// AvgRate is the lifetime average rate (FlowEnd), GB/s.
	AvgRate float64
	// Label is the Mark/Fault/Checkpoint annotation, and the span name
	// for SpanBegin/Instant.
	Label string
	// ActiveRates is the number of concurrently active flows at a
	// RateChange.
	ActiveFlows int
	// Rates are the applied per-flow rates at a RateChange, sorted by
	// flow id (empty when the producer does not report them).
	Rates []FlowRate
	// Span identifies the causal span (SpanBegin/SpanEnd; the owning
	// span for Instant, 0 when none).
	Span obs.SpanID
	// Parent is the enclosing span (SpanBegin; 0 for roots).
	Parent obs.SpanID
	// Cat is the span category ("mpi", "transfer", "flow", "compute",
	// "rank", ...) for SpanBegin/Instant.
	Cat string
	// Attrs is the resource attribution (SpanBegin/Instant).
	Attrs obs.SpanAttrs
}

// flowKey identifies one flow across the cluster: flow ids are allocated
// per machine, so the pair is the unique identity.
type flowKey struct {
	machine, id int
}

// flowRecord aggregates one flow's life.
type flowRecord struct {
	stream   memsys.Stream
	bytes    float64
	start    float64
	end      float64
	finished bool
	avgRate  float64
}

// Recorder collects events. The zero value is an empty, usable recorder
// (storage is allocated lazily), so a Mark or a render before any flow
// starts is always safe. Recorders are not safe for concurrent use — the
// engine is cooperative, so this is never needed.
type Recorder struct {
	events []Event
	flows  map[flowKey]*flowRecord
	// MaxEvents bounds memory (0 = unbounded); once exceeded, further
	// RateChange events are dropped (lifecycle events are always kept).
	// The first drop appends one Mark event labelled TruncatedLabel and
	// sets Truncated, so downstream analyses can refuse incomplete
	// timelines instead of silently computing on them.
	MaxEvents int
	truncated bool
	// dropped counts events lost to MaxEvents (nil until SetRegistry).
	dropped *obs.Counter
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{flows: make(map[flowKey]*flowRecord)}
}

// SetRegistry registers the recorder's instruments in reg: the
// memcontention_trace_dropped_total counter tracks events lost to the
// MaxEvents bound. A nil registry detaches.
func (r *Recorder) SetRegistry(reg *obs.Registry) {
	if r == nil {
		return
	}
	r.dropped = reg.Counter("memcontention_trace_dropped_total", "Trace events dropped by the Recorder's MaxEvents bound.", nil)
}

// Truncated reports whether the MaxEvents bound has dropped any events:
// a truncated timeline must not be used for bandwidth attribution or
// critical-path analysis.
func (r *Recorder) Truncated() bool {
	if r == nil {
		return false
	}
	return r.truncated
}

// ensureFlows lazily allocates the flow map, keeping the zero-value
// Recorder usable.
func (r *Recorder) ensureFlows() {
	if r.flows == nil {
		r.flows = make(map[flowKey]*flowRecord)
	}
}

// Append records one event, maintaining the per-flow bookkeeping and the
// MaxEvents bound. It is the single ingestion point: the FlowObserver
// methods, the profiler and trace stitching all funnel through it, so a
// replayed event stream reconstructs the same recorder state as the
// original run.
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	switch ev.Kind {
	case FlowStart:
		r.ensureFlows()
		r.flows[flowKey{ev.Machine, ev.FlowID}] = &flowRecord{stream: ev.Stream, bytes: ev.Bytes, start: ev.At}
	case FlowEnd:
		if fr := r.flows[flowKey{ev.Machine, ev.FlowID}]; fr != nil {
			fr.end, fr.finished, fr.avgRate = ev.At, true, ev.AvgRate
		}
	case RateChange:
		if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
			r.drop(ev.At)
			return
		}
	}
	r.events = append(r.events, ev)
}

// Ingest replays a recorded event stream through Append, e.g. to stitch
// per-unit span files back into one recorder on campaign resume.
func (r *Recorder) Ingest(events []Event) {
	for _, ev := range events {
		r.Append(ev)
	}
}

// drop accounts one event lost to MaxEvents, marking the timeline
// truncated on the first loss.
func (r *Recorder) drop(at float64) {
	r.dropped.Inc()
	if !r.truncated {
		r.truncated = true
		r.events = append(r.events, Event{At: at, Kind: Mark, Label: TruncatedLabel})
	}
}

// FlowStarted implements engine.FlowObserver.
func (r *Recorder) FlowStarted(machine, id int, stream memsys.Stream, bytes, at float64) {
	r.Append(Event{At: at, Kind: FlowStart, Machine: machine, FlowID: id, Stream: stream, Bytes: bytes})
}

// FlowFinished implements engine.FlowObserver.
func (r *Recorder) FlowFinished(machine, id int, at, avgRate float64) {
	r.Append(Event{At: at, Kind: FlowEnd, Machine: machine, FlowID: id, AvgRate: avgRate})
}

// RatesResolved implements engine.FlowObserver. The rates are the
// limiter-applied per-flow rates (GB/s), recorded sorted by flow id so
// the timeline is deterministic.
func (r *Recorder) RatesResolved(machine int, at float64, rates map[int]float64) {
	if r == nil {
		return
	}
	if r.MaxEvents > 0 && len(r.events) >= r.MaxEvents {
		r.drop(at) // don't build the rate list for a dropped event
		return
	}
	ev := Event{At: at, Kind: RateChange, Machine: machine, ActiveFlows: len(rates)}
	if len(rates) > 0 {
		ev.Rates = make([]FlowRate, 0, len(rates))
		for id, gbps := range rates {
			ev.Rates = append(ev.Rates, FlowRate{Flow: id, GBps: gbps})
		}
		sort.Slice(ev.Rates, func(i, j int) bool { return ev.Rates[i].Flow < ev.Rates[j].Flow })
	}
	r.Append(ev)
}

// MarkAt adds a user annotation at the given simulated time.
func (r *Recorder) MarkAt(at float64, label string) {
	r.Append(Event{At: at, Kind: Mark, Label: label})
}

// CheckpointAt records a graceful-interruption marker at the given
// simulated time: everything before it is journaled and a resumed run
// will pick up exactly here.
func (r *Recorder) CheckpointAt(at float64, label string) {
	r.Append(Event{At: at, Kind: Checkpoint, Label: label})
}

// FaultAt records a fault-injection event at the given simulated time.
// It implements the faults.Marker interface, so a Recorder attached to a
// cluster also captures the fault timeline.
func (r *Recorder) FaultAt(at float64, label string) {
	r.Append(Event{At: at, Kind: Fault, Label: label})
}

// Events returns the recorded timeline in insertion order (which is
// simulated-time order, the engine being deterministic).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// EventCount reports the number of recorded events.
func (r *Recorder) EventCount() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Summary aggregates the recording per stream kind.
type Summary struct {
	Flows        int
	Finished     int
	Bytes        units.ByteSize
	BusyTime     float64 // sum of flow lifetimes, seconds
	MeanRate     float64 // bytes-weighted mean rate, GB/s
	MinRate      float64
	MaxRate      float64
	FirstStart   float64
	LastEnd      float64
	RateResolves int
	PeakActive   int
}

// Summarize computes per-kind statistics over finished flows.
func (r *Recorder) Summarize(kind memsys.StreamKind) Summary {
	if r == nil {
		return Summary{MinRate: 0}
	}
	var s Summary
	s.MinRate = -1
	first := true
	var weightedRate, totalBytes float64
	for _, fr := range r.flows {
		if fr.stream.Kind != kind {
			continue
		}
		s.Flows++
		if first || fr.start < s.FirstStart {
			s.FirstStart = fr.start
			first = false
		}
		if !fr.finished {
			continue
		}
		s.Finished++
		s.Bytes += units.ByteSize(fr.bytes)
		s.BusyTime += fr.end - fr.start
		if fr.end > s.LastEnd {
			s.LastEnd = fr.end
		}
		weightedRate += fr.avgRate * fr.bytes
		totalBytes += fr.bytes
		if s.MinRate < 0 || fr.avgRate < s.MinRate {
			s.MinRate = fr.avgRate
		}
		if fr.avgRate > s.MaxRate {
			s.MaxRate = fr.avgRate
		}
	}
	if totalBytes > 0 {
		s.MeanRate = weightedRate / totalBytes
	}
	if s.MinRate < 0 {
		s.MinRate = 0
	}
	for _, ev := range r.events {
		if ev.Kind == RateChange {
			s.RateResolves++
			if ev.ActiveFlows > s.PeakActive {
				s.PeakActive = ev.ActiveFlows
			}
		}
	}
	return s
}

// Timeline renders the recording as aligned text, one line per event,
// limited to the first max events (0 = all).
func (r *Recorder) Timeline(max int) string {
	if r == nil || len(r.events) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	events := r.events
	if max > 0 && len(events) > max {
		events = events[:max]
	}
	for _, ev := range events {
		fmt.Fprintf(&b, "%12.6f ms  %-11s", ev.At*1e3, ev.Kind)
		switch ev.Kind {
		case FlowStart:
			fmt.Fprintf(&b, "  #%d %s node %d, %s", ev.FlowID, ev.Stream.Kind, ev.Stream.Node, units.ByteSize(ev.Bytes))
		case FlowEnd:
			fmt.Fprintf(&b, "  #%d at %.2f GB/s", ev.FlowID, ev.AvgRate)
		case RateChange:
			fmt.Fprintf(&b, "  %d active", ev.ActiveFlows)
		case Mark, Fault, Checkpoint:
			fmt.Fprintf(&b, "  %s", ev.Label)
		case SpanBegin:
			fmt.Fprintf(&b, "  [%d] %s (%s)", ev.Span, ev.Label, ev.Cat)
		case SpanEnd:
			fmt.Fprintf(&b, "  [%d]", ev.Span)
		case Instant:
			fmt.Fprintf(&b, "  %s", ev.Label)
		}
		b.WriteByte('\n')
	}
	if max > 0 && len(r.events) > max {
		fmt.Fprintf(&b, "... %d more events\n", len(r.events)-max)
	}
	return b.String()
}

// Gantt renders per-flow lifetime bars (sorted by start time) scaled to
// width characters, for quick visual inspection of overlap structure.
func (r *Recorder) Gantt(width int) string {
	if r == nil {
		return "(no flows)\n"
	}
	if width < 10 {
		width = 10
	}
	type bar struct {
		key flowKey
		fr  *flowRecord
	}
	var bars []bar
	var tMax float64
	for key, fr := range r.flows {
		if !fr.finished {
			continue
		}
		bars = append(bars, bar{key, fr})
		if fr.end > tMax {
			tMax = fr.end
		}
	}
	if tMax == 0 || len(bars) == 0 {
		return "(no finished flows)\n"
	}
	sort.Slice(bars, func(i, j int) bool {
		if bars[i].fr.start != bars[j].fr.start {
			return bars[i].fr.start < bars[j].fr.start
		}
		if bars[i].key.machine != bars[j].key.machine {
			return bars[i].key.machine < bars[j].key.machine
		}
		return bars[i].key.id < bars[j].key.id
	})
	var b strings.Builder
	for _, bb := range bars {
		startCol := int(bb.fr.start / tMax * float64(width))
		endCol := int(bb.fr.end / tMax * float64(width))
		if endCol <= startCol {
			endCol = startCol + 1
		}
		glyph := byte('=')
		if bb.fr.stream.Kind == memsys.KindComm {
			glyph = '~'
		}
		fmt.Fprintf(&b, "#%-4d |%s%s%s| %s\n",
			bb.key.id,
			strings.Repeat(" ", startCol),
			strings.Repeat(string(glyph), endCol-startCol),
			strings.Repeat(" ", width-endCol),
			units.ByteSize(bb.fr.bytes))
	}
	return b.String()
}
