package trace

import (
	"bytes"
	"strings"
	"testing"

	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// recordedRun executes a small two-flow simulation with a recorder
// attached and returns the recorder.
func recordedRun(t *testing.T) *Recorder {
	t.Helper()
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(topology.Henri(), prof)
	if err != nil {
		t.Fatal(err)
	}
	sim := engine.NewSim()
	flows := engine.NewFlows(sim, sys)
	rec := NewRecorder()
	flows.SetObserver(rec)
	sim.Spawn("main", func(p *engine.Proc) {
		comm := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 0}, 32*units.MiB)
		comp := flows.Start(memsys.Stream{Kind: memsys.KindCompute, Core: 0, Node: 0, Demand: 5}, 64*units.MiB)
		rec.MarkAt(sim.Now(), "both started")
		comm.Wait(p)
		comp.Wait(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderLifecycle(t *testing.T) {
	rec := recordedRun(t)
	var starts, ends, marks, rates int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case FlowStart:
			starts++
		case FlowEnd:
			ends++
		case Mark:
			marks++
		case RateChange:
			rates++
		}
	}
	if starts != 2 || ends != 2 {
		t.Errorf("lifecycle events: %d starts, %d ends (want 2/2)", starts, ends)
	}
	if marks != 1 {
		t.Errorf("marks = %d", marks)
	}
	if rates < 2 {
		t.Errorf("rate resolves = %d, want at least one per start", rates)
	}
	// Events must be time-ordered.
	prev := -1.0
	for _, ev := range rec.Events() {
		if ev.At < prev {
			t.Fatal("events out of time order")
		}
		prev = ev.At
	}
}

func TestSummarize(t *testing.T) {
	rec := recordedRun(t)
	comm := rec.Summarize(memsys.KindComm)
	if comm.Flows != 1 || comm.Finished != 1 {
		t.Fatalf("comm summary: %+v", comm)
	}
	if comm.Bytes != 32*units.MiB {
		t.Errorf("comm bytes = %v", comm.Bytes)
	}
	if comm.MeanRate <= 0 || comm.MeanRate > 11 {
		t.Errorf("comm mean rate = %v", comm.MeanRate)
	}
	if comm.MinRate > comm.MaxRate {
		t.Error("rate bounds inverted")
	}
	comp := rec.Summarize(memsys.KindCompute)
	if comp.Finished != 1 || comp.Bytes != 64*units.MiB {
		t.Errorf("comp summary: %+v", comp)
	}
	if comp.BusyTime <= comm.BusyTime {
		t.Error("the larger, slower transfer must be busy longer")
	}
	if comm.PeakActive != 2 {
		t.Errorf("peak active = %d, want 2", comm.PeakActive)
	}
}

func TestTimelineRendering(t *testing.T) {
	rec := recordedRun(t)
	text := rec.Timeline(0)
	for _, want := range []string{"flow-start", "flow-end", "mark", "both started", "GB/s"} {
		if !strings.Contains(text, want) {
			t.Errorf("timeline missing %q:\n%s", want, text)
		}
	}
	limited := rec.Timeline(2)
	if !strings.Contains(limited, "more events") {
		t.Error("truncated timeline must say how much was dropped")
	}
	if strings.Count(limited, "\n") != 3 { // 2 events + ellipsis
		t.Errorf("limited timeline:\n%s", limited)
	}
}

func TestGanttRendering(t *testing.T) {
	rec := recordedRun(t)
	g := rec.Gantt(40)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	// Comm flow renders with '~', compute with '='.
	if !strings.Contains(g, "~") || !strings.Contains(g, "=") {
		t.Errorf("gantt glyphs missing:\n%s", g)
	}
	if NewRecorder().Gantt(40) != "(no finished flows)\n" {
		t.Error("empty gantt must say so")
	}
}

func TestMaxEventsBound(t *testing.T) {
	rec := NewRecorder()
	rec.MaxEvents = 3
	if rec.Truncated() {
		t.Error("fresh recorder must not be truncated")
	}
	for i := 0; i < 10; i++ {
		rec.RatesResolved(0, float64(i), map[int]float64{1: 1})
	}
	// 3 rate changes plus exactly one "truncated" mark.
	if len(rec.Events()) != 4 {
		t.Errorf("MaxEvents not enforced: %d events", len(rec.Events()))
	}
	if !rec.Truncated() {
		t.Error("dropping events must set Truncated")
	}
	last := rec.Events()[3]
	if last.Kind != Mark || last.Label != TruncatedLabel || last.At != 3 {
		t.Errorf("missing truncation marker, got %+v", last)
	}
	// Lifecycle events are always kept.
	rec.FlowStarted(0, 1, memsys.Stream{}, 10, 1)
	if len(rec.Events()) != 5 {
		t.Error("lifecycle events must bypass the bound")
	}
}

// TestTruncationCounter: drops feed memcontention_trace_dropped_total.
func TestTruncationCounter(t *testing.T) {
	reg := obs.NewRegistry()
	rec := NewRecorder()
	rec.SetRegistry(reg)
	rec.MaxEvents = 1
	for i := 0; i < 5; i++ {
		rec.RatesResolved(0, float64(i), map[int]float64{1: 1})
	}
	c := reg.Counter("memcontention_trace_dropped_total", "", nil)
	if got := c.Value(); got != 4 {
		t.Errorf("dropped counter = %v, want 4", got)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{FlowStart, FlowEnd, RateChange, Mark} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestCheckpointEvent(t *testing.T) {
	var r Recorder
	r.CheckpointAt(1.5, "interrupted: 3/9 placements journaled")
	if Checkpoint.String() != "checkpoint" {
		t.Fatalf("Checkpoint.String() = %q", Checkpoint.String())
	}
	out := r.Timeline(0)
	if !strings.Contains(out, "checkpoint") || !strings.Contains(out, "3/9 placements") {
		t.Fatalf("timeline missing checkpoint event:\n%s", out)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"kind":"checkpoint"`) || !strings.Contains(line, `"label":"interrupted: 3/9 placements journaled"`) {
		t.Fatalf("jsonl missing checkpoint fields: %s", line)
	}
}
