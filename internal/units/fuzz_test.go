package units

import (
	"math"
	"testing"
)

func FuzzParseByteSize(f *testing.F) {
	for _, seed := range []string{
		"64MiB", "1GiB", "0", "12 kb", " 7 B ", "-1", "NaN", "Inf",
		"9223372036854775807GiB", "1e9", "", "gib", "  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseByteSize(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseByteSize(%q) = %d, negative", s, v)
		}
	})
}

func FuzzParseBandwidth(f *testing.F) {
	for _, seed := range []string{
		"12.5 GB/s", "100 MB/s", "0", "-3", "NaN", "nan GB/s", "+Inf",
		"1e308 GB/s", "1e309", "", "GB/s", "0x1p10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseBandwidth(s)
		if err != nil {
			return
		}
		g := float64(v)
		if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("ParseBandwidth(%q) = %v, negative or non-finite", s, g)
		}
	})
}
