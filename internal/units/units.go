// Package units provides the value types shared by every subsystem:
// bandwidths, byte sizes and simulated durations.
//
// Bandwidths are the central quantity of the reproduced paper; they are
// stored as float64 GB/s (decimal gigabytes, matching the paper's plots)
// wrapped in a named type so that formatting, parsing and comparisons with
// tolerance live in one place.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BytesPerGB is the decimal gigabyte used throughout the paper (GB/s axes).
const BytesPerGB = 1e9

// Bandwidth is a data rate in GB/s (decimal). The zero value means "no
// bandwidth" and is valid.
type Bandwidth float64

// GBps constructs a Bandwidth from a GB/s value.
func GBps(v float64) Bandwidth { return Bandwidth(v) }

// GBps reports the bandwidth as a plain float64 in GB/s.
func (b Bandwidth) GBps() float64 { return float64(b) }

// BytesPerSecond reports the bandwidth in bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) * BytesPerGB }

// IsZero reports whether the bandwidth is exactly zero.
func (b Bandwidth) IsZero() bool { return b == 0 }

// Valid reports whether the bandwidth is finite and non-negative.
func (b Bandwidth) Valid() bool {
	f := float64(b)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

// String renders the bandwidth the way the paper's plots label it,
// e.g. "12.10 GB/s".
func (b Bandwidth) String() string {
	return fmt.Sprintf("%.2f GB/s", float64(b))
}

// Within reports whether b and other differ by at most tol (absolute, GB/s).
func (b Bandwidth) Within(other Bandwidth, tol float64) bool {
	return math.Abs(float64(b)-float64(other)) <= tol
}

// ParseBandwidth parses strings such as "12.5", "12.5GB/s", "12.5 GB/s",
// "900 MB/s". It accepts GB/s and MB/s suffixes (decimal).
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	scale := 1.0
	switch {
	case trimSuffixFold(&t, "gb/s"):
	case trimSuffixFold(&t, "mb/s"):
		scale = 1e-3
	}
	t = strings.TrimSpace(t)
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse bandwidth %q: %w", s, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: parse bandwidth %q: negative or non-finite", s)
	}
	return Bandwidth(v * scale), nil
}

// ByteSize is an amount of data in bytes.
type ByteSize int64

// Common sizes. The paper's benchmark receives 64 MiB messages; we keep the
// binary units for sizes (matching the "64 MB" message of §IV-A1, which is
// 64 MiB in the reference implementation).
const (
	KiB ByteSize = 1 << 10
	MiB ByteSize = 1 << 20
	GiB ByteSize = 1 << 30
)

// Bytes reports the size as an int64 byte count.
func (s ByteSize) Bytes() int64 { return int64(s) }

// String renders a human-readable size such as "64 MiB" or "512 B".
func (s ByteSize) String() string {
	switch {
	case s >= GiB && s%GiB == 0:
		return fmt.Sprintf("%d GiB", s/GiB)
	case s >= MiB && s%MiB == 0:
		return fmt.Sprintf("%d MiB", s/MiB)
	case s >= KiB && s%KiB == 0:
		return fmt.Sprintf("%d KiB", s/KiB)
	default:
		return fmt.Sprintf("%d B", int64(s))
	}
}

// ParseByteSize parses "64MiB", "64 MiB", "1GiB", "512B", plain integers
// (bytes), and the loose decimal forms "64MB"/"1GB" used casually by the
// paper (interpreted as binary units, matching the reference benchmark).
// trimSuffixFold strips an ASCII suffix case-insensitively, in place.
// Byte-indexed (never through strings.ToLower, whose output can be longer
// than its input on invalid UTF-8).
func trimSuffixFold(t *string, suffix string) bool {
	s := *t
	if len(s) < len(suffix) || !strings.EqualFold(s[len(s)-len(suffix):], suffix) {
		return false
	}
	*t = s[:len(s)-len(suffix)]
	return true
}

func ParseByteSize(s string) (ByteSize, error) {
	t := strings.TrimSpace(s)
	mult := ByteSize(1)
	switch {
	case trimSuffixFold(&t, "gib"), trimSuffixFold(&t, "gb"):
		mult = GiB
	case trimSuffixFold(&t, "mib"), trimSuffixFold(&t, "mb"):
		mult = MiB
	case trimSuffixFold(&t, "kib"), trimSuffixFold(&t, "kb"):
		mult = KiB
	case trimSuffixFold(&t, "b"):
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse byte size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: parse byte size %q: negative", s)
	}
	if mult > 1 && v > int64(math.MaxInt64)/int64(mult) {
		return 0, fmt.Errorf("units: parse byte size %q: overflows", s)
	}
	return ByteSize(v) * mult, nil
}

// Duration is simulated time in seconds. Simulated time is a float64 because
// fluid-flow simulation produces event times from bandwidth divisions; it is
// unrelated to wall-clock time.Duration.
type Duration float64

// Seconds constructs a Duration from seconds.
func Seconds(v float64) Duration { return Duration(v) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Valid reports whether the duration is finite and non-negative.
func (d Duration) Valid() bool {
	f := float64(d)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

// String renders the duration with an adaptive unit (s, ms, µs, ns).
func (d Duration) String() string {
	v := float64(d)
	switch {
	case v >= 1 || v == 0:
		return fmt.Sprintf("%.3f s", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3f ms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%.3f µs", v*1e6)
	default:
		return fmt.Sprintf("%.0f ns", v*1e9)
	}
}

// TransferTime reports how long moving size bytes at bandwidth b takes.
// A zero bandwidth yields +Inf, reported as an invalid duration by Valid.
func TransferTime(size ByteSize, b Bandwidth) Duration {
	if b <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(float64(size) / b.BytesPerSecond())
}

// RateFor reports the bandwidth that moves size bytes in d seconds.
func RateFor(size ByteSize, d Duration) Bandwidth {
	if d <= 0 {
		return Bandwidth(math.Inf(1))
	}
	return Bandwidth(float64(size) / BytesPerGB / float64(d))
}
