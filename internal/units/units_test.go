package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{GBps(12.1), "12.10 GB/s"},
		{GBps(0), "0.00 GB/s"},
		{GBps(5.018), "5.02 GB/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bandwidth(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{"12.5", 12.5, false},
		{"12.5GB/s", 12.5, false},
		{"12.5 GB/s", 12.5, false},
		{"900 MB/s", 0.9, false},
		{"0", 0, false},
		{"-3", 0, true},
		{"garbage", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseBandwidth(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && math.Abs(got.GBps()-c.want) > 1e-12 {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", c.in, got.GBps(), c.want)
		}
	}
}

func TestBandwidthValid(t *testing.T) {
	if !GBps(5).Valid() || !GBps(0).Valid() {
		t.Error("finite non-negative bandwidths must be valid")
	}
	if GBps(-1).Valid() {
		t.Error("negative bandwidth must be invalid")
	}
	if Bandwidth(math.NaN()).Valid() || Bandwidth(math.Inf(1)).Valid() {
		t.Error("non-finite bandwidth must be invalid")
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{64 * MiB, "64 MiB"},
		{2 * GiB, "2 GiB"},
		{KiB, "1 KiB"},
		{1536, "1536 B"}, // 1.5 KiB: not a whole KiB multiple
		{0, "0 B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in      string
		want    ByteSize
		wantErr bool
	}{
		{"64MiB", 64 * MiB, false},
		{"64 MiB", 64 * MiB, false},
		{"64MB", 64 * MiB, false}, // loose decimal form = binary, like the paper's "64 MB"
		{"1GiB", GiB, false},
		{"512B", 512, false},
		{"512", 512, false},
		{"2KiB", 2 * KiB, false},
		{"-1", 0, true},
		{"MiB", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseByteSize(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseByteSizeRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		size := ByteSize(raw) * KiB
		parsed, err := ParseByteSize(size.String())
		return err == nil && parsed == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTime(t *testing.T) {
	d := TransferTime(64*MiB, GBps(1))
	want := float64(64*MiB) / 1e9
	if math.Abs(d.Seconds()-want) > 1e-12 {
		t.Errorf("TransferTime(64MiB, 1GB/s) = %v s, want %v s", d.Seconds(), want)
	}
	if TransferTime(MiB, 0).Valid() {
		t.Error("transfer at zero bandwidth must be invalid (infinite)")
	}
}

func TestRateForInvertsTransferTime(t *testing.T) {
	f := func(sizeKiB uint16, tenthGBps uint8) bool {
		if sizeKiB == 0 || tenthGBps == 0 {
			return true
		}
		size := ByteSize(sizeKiB) * KiB
		bw := GBps(float64(tenthGBps) / 10)
		d := TransferTime(size, bw)
		back := RateFor(size, d)
		return math.Abs(back.GBps()-bw.GBps()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{Seconds(1.5), "1.500 s"},
		{Seconds(0.25), "250.000 ms"},
		{Seconds(2e-6), "2.000 µs"},
		{Seconds(3e-9), "3 ns"},
		{Seconds(0), "0.000 s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Duration(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRateForEdge(t *testing.T) {
	if !math.IsInf(RateFor(MiB, 0).GBps(), 1) {
		t.Error("RateFor with zero duration must be +Inf")
	}
}
