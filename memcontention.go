// Package memcontention predicts memory contention between MPI
// communications and memory-bound computations on NUMA machines,
// reproducing Denis, Jeannot & Swartvagher, "Modeling Memory Contention
// between Communications and Computations in Distributed HPC Systems"
// (IPDPS Workshops 2022).
//
// The package bundles:
//
//   - the paper's threshold model (equations 1–8): calibrated from two
//     benchmark runs, it predicts the memory bandwidth obtained by
//     computations and communications for every number of computing cores
//     and every NUMA placement of their data;
//   - a simulated testbed standing in for the paper's hardware: the six
//     Table I platforms, a fluid-flow memory-system simulator with the
//     paper's arbitration hypotheses, a simulated fabric and a small MPI;
//   - the benchmarking suite and the full evaluation pipeline
//     regenerating Table II and the data behind Figures 2–8.
//
// # Quick start
//
//	m, err := memcontention.Calibrate("henri", 1)
//	if err != nil { ... }
//	pred, err := m.Predict(12, memcontention.Placement{Comp: 0, Comm: 0})
//	// pred.Comp, pred.Comm are the predicted GB/s.
//
// See examples/ for complete programs.
package memcontention

import (
	"fmt"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
)

// Re-exported types: the stable public surface over the internal packages.
type (
	// Platform is a machine description (Table I row).
	Platform = topology.Platform
	// NodeID identifies a NUMA node (socket-major numbering).
	NodeID = topology.NodeID
	// CoreID identifies a physical core.
	CoreID = topology.CoreID
	// HardwareProfile is the simulated hardware behaviour of a platform.
	HardwareProfile = memsys.Profile
	// Model is the calibrated two-instantiation contention model.
	Model = model.Model
	// Params is one model instantiation (local or remote).
	Params = model.Params
	// Placement locates computation and communication data on NUMA nodes.
	Placement = model.Placement
	// Prediction is a (computation, communication) bandwidth pair in GB/s.
	Prediction = model.Prediction
	// BenchConfig parameterises a benchmark campaign.
	BenchConfig = bench.Config
	// BenchRunner executes benchmark campaigns.
	BenchRunner = bench.Runner
	// Curve is the benchmark output for one placement.
	Curve = bench.Curve
	// EvalResult is the full evaluation of one platform.
	EvalResult = eval.PlatformResult
	// ErrorSummary is one row of Table II.
	ErrorSummary = eval.ErrorSummary
	// Kernel is a computation kernel description.
	Kernel = kernels.Kernel
	// Table is a renderable result table.
	Table = export.Table
	// Registry collects telemetry instruments (counters, gauges,
	// histograms) and exports them as Prometheus text or JSON.
	Registry = obs.Registry
	// TraceRecorder records flow lifecycle events for timeline rendering
	// and JSONL export; install it with Cluster.WithObserver.
	TraceRecorder = trace.Recorder
	// RunManifest describes a run (tool, version, platform, seed,
	// instruments) for reproducibility records.
	RunManifest = obs.Manifest
)

// PlatformBuilder assembles custom symmetric platforms.
type PlatformBuilder = topology.Builder

// Network technologies and vendors for custom platforms.
const (
	InfiniBand = topology.InfiniBand
	OmniPath   = topology.OmniPath
	Intel      = topology.Intel
	AMD        = topology.AMD
	Cavium     = topology.Cavium
)

// NewPlatformBuilder starts a custom machine description (what-if
// studies on topologies that are not part of Table I).
func NewPlatformBuilder(name string) *PlatformBuilder { return topology.NewBuilder(name) }

// DefaultProfileFor derives a plausible generic hardware profile for a
// custom platform from its structure (core counts, NUMA split).
func DefaultProfileFor(plat *Platform) *HardwareProfile { return memsys.DefaultProfile(plat) }

// Platforms lists the built-in testbed platform names (Table I).
func Platforms() []string { return topology.Names() }

// PlatformByName returns a built-in platform.
func PlatformByName(name string) (*Platform, error) { return topology.ByName(name) }

// Testbed returns every built-in platform in Table I order.
func Testbed() []*Platform { return topology.Testbed() }

// ProfileFor returns the simulated hardware behaviour of a built-in
// platform. Callers may tweak the copy to explore what-if hardware.
func ProfileFor(name string) (*HardwareProfile, error) { return memsys.ProfileFor(name) }

// DefaultKernel returns the paper's calibration kernel (non-temporal
// memset).
func DefaultKernel() Kernel { return kernels.New(kernels.NTMemset) }

// KernelByName returns a built-in kernel: "nt-memset", "copy", "triad" or
// "load".
func KernelByName(name string) (Kernel, error) {
	for _, kind := range []kernels.Kind{kernels.NTMemset, kernels.Copy, kernels.Triad, kernels.Load} {
		if kind.String() == name {
			return kernels.New(kind), nil
		}
	}
	return Kernel{}, fmt.Errorf("memcontention: unknown kernel %q", name)
}

// NewBenchRunner builds a benchmark runner for a configuration.
func NewBenchRunner(cfg BenchConfig) (*BenchRunner, error) { return bench.NewRunner(cfg) }

// NewRegistry creates an empty telemetry registry. Pass it to
// BenchConfig.Registry or Cluster.WithRegistry to collect metrics.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTraceRecorder creates a flow-event recorder for Cluster.WithObserver.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Calibrate runs the two sample benchmarks on a built-in platform and
// returns the calibrated model (§IV-A2 pipeline).
func Calibrate(platform string, seed uint64) (Model, error) {
	plat, err := topology.ByName(platform)
	if err != nil {
		return Model{}, err
	}
	return CalibrateConfig(BenchConfig{Platform: plat, Seed: seed})
}

// CalibrateConfig is Calibrate for an explicit configuration (custom
// platform, profile, kernel or noise seed).
func CalibrateConfig(cfg BenchConfig) (Model, error) {
	runner, err := bench.NewRunner(cfg)
	if err != nil {
		return Model{}, err
	}
	return calib.CalibrateRunner(runner)
}

// CalibrateCurves extracts the model from externally produced benchmark
// curves (the two sample placements).
func CalibrateCurves(local, remote *Curve, nodesPerSocket int) (Model, error) {
	return calib.CalibrateModel(local, remote, nodesPerSocket)
}

// Evaluate runs the complete §IV evaluation for one built-in platform:
// benchmark all placements, calibrate from the samples, predict, and
// compute the error statistics.
func Evaluate(platform string, seed uint64) (*EvalResult, error) {
	plat, err := topology.ByName(platform)
	if err != nil {
		return nil, err
	}
	return eval.EvaluatePlatform(BenchConfig{Platform: plat, Seed: seed})
}

// EvaluateConfig is Evaluate for an explicit configuration.
func EvaluateConfig(cfg BenchConfig) (*EvalResult, error) { return eval.EvaluatePlatform(cfg) }

// EvaluateTestbed evaluates all six Table I platforms.
func EvaluateTestbed(seed uint64) ([]*EvalResult, error) { return eval.EvaluateTestbed(seed) }

// Table1 renders the testbed characteristics table.
func Table1() *Table { return eval.Table1(topology.Testbed()) }

// Table2 renders the model-error table from evaluation results.
func Table2(results []*EvalResult) *Table { return eval.Table2(results) }
