package memcontention

import (
	"strings"
	"testing"
)

func TestPlatformsList(t *testing.T) {
	names := Platforms()
	if len(names) != 6 {
		t.Fatalf("%d platforms, want 6", len(names))
	}
	for _, n := range names {
		p, err := PlatformByName(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if _, err := ProfileFor(p.Name); err != nil {
			t.Errorf("%s: no hardware profile: %v", n, err)
		}
	}
	if _, err := PlatformByName("bogus"); err == nil {
		t.Error("unknown platform must error")
	}
	if len(Testbed()) != 6 {
		t.Error("Testbed must list all six platforms")
	}
}

func TestKernelByName(t *testing.T) {
	for _, name := range []string{"nt-memset", "copy", "triad", "load"} {
		k, err := KernelByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if k.String() != name {
			t.Errorf("kernel %q round trip broken", name)
		}
	}
	if _, err := KernelByName("fft"); err == nil {
		t.Error("unknown kernel must error")
	}
	if DefaultKernel().String() != "nt-memset" {
		t.Error("default kernel must be the paper's NT memset")
	}
}

func TestCalibrateFacade(t *testing.T) {
	m, err := Calibrate("dahu", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(8, Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Comp <= 0 || pred.Comm <= 0 {
		t.Errorf("empty prediction: %+v", pred)
	}
	if _, err := Calibrate("bogus", 1); err == nil {
		t.Error("unknown platform must error")
	}
}

func TestCalibrateCurvesFacade(t *testing.T) {
	runner, err := NewBenchRunner(BenchConfig{Platform: mustPlatform(t, "henri")})
	if err != nil {
		t.Fatal(err)
	}
	local, remote, err := runner.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	m, err := CalibrateCurves(local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Calibrate("henri", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != direct {
		t.Error("facade paths must agree")
	}
}

func mustPlatform(t *testing.T, name string) *Platform {
	t.Helper()
	p, err := PlatformByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1.String(), "occigen") {
		t.Error("Table I missing platforms")
	}
	t2 := Table2(testbedResults)
	if !strings.Contains(t2.String(), "Average") {
		t.Error("Table II missing average row")
	}
}

func TestClusterSmoke(t *testing.T) {
	cluster, err := NewCluster("henri", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cluster.Machines()) != 2 {
		t.Fatal("machine count wrong")
	}
	var status MPIStatus
	elapsed, err := cluster.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			if err := ctx.Send(1, 1, 8*MiB, 0, "ping"); err != nil {
				t.Error(err)
			}
		case 1:
			var err error
			status, err = ctx.Recv(0, 1, 8*MiB, 0)
			if err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("simulated time must advance")
	}
	if status.Payload != "ping" {
		t.Error("payload lost")
	}
	if _, err := NewCluster("henri", 0); err == nil {
		t.Error("empty cluster must fail")
	}
	if _, err := NewCluster("bogus", 1); err == nil {
		t.Error("unknown platform must fail")
	}
}

func TestParseHelpers(t *testing.T) {
	if s, err := ParseByteSize("64MiB"); err != nil || s != 64*MiB {
		t.Errorf("ParseByteSize = %v, %v", s, err)
	}
	if b, err := ParseBandwidth("12.5 GB/s"); err != nil || b.GBps() != 12.5 {
		t.Errorf("ParseBandwidth = %v, %v", b, err)
	}
}

func TestEvaluateConfigFacade(t *testing.T) {
	res, err := EvaluateConfig(BenchConfig{Platform: mustPlatform(t, "occigen"), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Platform != "occigen" || len(res.Placements) != 4 {
		t.Error("evaluation shape wrong")
	}
}
