package memcontention

import (
	"bytes"
	"strings"
	"testing"
)

// runObservedJob runs a tiny two-machine ping job with a registry and a
// trace recorder attached and returns both.
func runObservedJob(t *testing.T) (*Registry, *TraceRecorder) {
	t.Helper()
	reg := NewRegistry()
	rec := NewTraceRecorder()
	cluster, err := NewCluster("henri", 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster.WithRegistry(reg).WithObserver(rec)
	if cluster.Registry() != reg {
		t.Fatal("Registry() must return the attached registry")
	}
	_, err = cluster.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			if err := ctx.Send(1, 1, 8*MiB, 0, nil); err != nil {
				t.Error(err)
			}
		case 1:
			if _, err := ctx.Recv(0, 1, 8*MiB, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, rec
}

func TestClusterTelemetry(t *testing.T) {
	reg, rec := runObservedJob(t)
	if got := reg.Counter("memcontention_cluster_runs_total", "", nil).Value(); got != 1 {
		t.Errorf("runs counter = %v, want 1", got)
	}
	if got := reg.Gauge("memcontention_cluster_ranks", "", nil).Value(); got != 2 {
		t.Errorf("ranks gauge = %v, want 2", got)
	}
	if got := reg.Gauge("memcontention_cluster_sim_seconds", "", nil).Value(); got <= 0 {
		t.Errorf("sim time gauge = %v, want > 0", got)
	}
	// The engine and flow instruments must be wired through too.
	if got := reg.Counter("memcontention_engine_flows_started_total", "", nil).Value(); got < 2 {
		t.Errorf("flows started = %v, want >= 2 (src+dst streams)", got)
	}
	if got := reg.Counter("memcontention_engine_events_fired_total", "", nil).Value(); got == 0 {
		t.Error("no engine events recorded")
	}
	// The observer must have seen the same flows.
	if rec.EventCount() == 0 {
		t.Fatal("trace recorder saw no events")
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "memcontention_cluster_runs_total 1") {
		t.Error("cluster counter missing from exposition")
	}
}

// TestClusterTelemetryDeterministic checks that two identically seeded
// simulated jobs export byte-identical metrics and traces.
func TestClusterTelemetryDeterministic(t *testing.T) {
	regA, recA := runObservedJob(t)
	regB, recB := runObservedJob(t)
	var promA, promB, jsonlA, jsonlB bytes.Buffer
	if err := regA.WritePrometheus(&promA); err != nil {
		t.Fatal(err)
	}
	if err := regB.WritePrometheus(&promB); err != nil {
		t.Fatal(err)
	}
	if promA.String() != promB.String() {
		t.Error("Prometheus exports differ across identical runs")
	}
	if err := recA.WriteJSONL(&jsonlA); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteJSONL(&jsonlB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonlA.Bytes(), jsonlB.Bytes()) {
		t.Error("JSONL traces differ across identical runs")
	}
}
