package memcontention

// reproduction_test.go asserts the paper's evaluation claims on the
// simulated testbed — the success criteria of DESIGN.md's per-experiment
// index. Absolute GB/s are simulator-dependent; what is asserted is the
// *shape* of every result: who is throttled, in which placements, with
// what ordering across platforms.

import (
	"testing"

	"memcontention/internal/eval"
	"memcontention/internal/stats"
)

// testbedResults evaluates all six platforms once per test binary run.
var testbedResults = func() []*EvalResult {
	rs, err := EvaluateTestbed(1)
	if err != nil {
		panic(err)
	}
	return rs
}()

func resultFor(t *testing.T, platform string) *EvalResult {
	t.Helper()
	for _, r := range testbedResults {
		if r.Platform == platform {
			return r
		}
	}
	t.Fatalf("no result for %s", platform)
	return nil
}

// TestE9HeadlineErrors: the paper's headline — overall prediction error
// below 4 % on average for communications and below 3 % for computations.
func TestE9HeadlineErrors(t *testing.T) {
	var comm, comp []float64
	for _, r := range testbedResults {
		comm = append(comm, r.Errors.CommAll)
		comp = append(comp, r.Errors.CompAll)
		t.Logf("%-14s comm %.2f%%  comp %.2f%%  avg %.2f%%",
			r.Platform, r.Errors.CommAll, r.Errors.CompAll, r.Errors.Average)
	}
	if m := stats.Mean(comm); m > 4.0 {
		t.Errorf("average communication error %.2f%% exceeds the paper's 4%%", m)
	}
	if m := stats.Mean(comp); m > 3.0 {
		t.Errorf("average computation error %.2f%% exceeds the paper's ≈3%%", m)
	}
}

// TestE9PlatformOrdering: pyxis is the hardest platform for communication
// predictions (especially non-samples, §IV-B(e)); occigen is the easiest
// (§IV-B(d)).
func TestE9PlatformOrdering(t *testing.T) {
	pyxis := resultFor(t, "pyxis").Errors
	occigen := resultFor(t, "occigen").Errors
	for _, r := range testbedResults {
		if r.Platform == "pyxis" {
			continue
		}
		if r.Errors.CommAll > pyxis.CommAll {
			t.Errorf("%s comm error %.2f%% exceeds pyxis' %.2f%% — pyxis must be worst",
				r.Platform, r.Errors.CommAll, pyxis.CommAll)
		}
		if r.Errors.Average < occigen.Average {
			t.Errorf("%s average %.2f%% beats occigen's %.2f%% — occigen must be best",
				r.Platform, r.Errors.Average, occigen.Average)
		}
	}
	// The pyxis failure mode is specifically non-sample placements
	// (locality-sensitive network, Table II: 1.15% vs 13.32%).
	if pyxis.CommNonSamples < 2*pyxis.CommSamples {
		t.Errorf("pyxis non-sample comm error (%.2f%%) must dwarf the sample error (%.2f%%)",
			pyxis.CommNonSamples, pyxis.CommSamples)
	}
	if pyxis.CommNonSamples < 8 {
		t.Errorf("pyxis non-sample comm error %.2f%%, paper reports ≈13%%", pyxis.CommNonSamples)
	}
	if occigen.Average > 1.0 {
		t.Errorf("occigen average %.2f%%, paper reports ≈0.2%%", occigen.Average)
	}
}

// TestE3DiagonalContention: on henri, contention hurts computations only
// when both streams share a NUMA node (the diagonal subplots of Fig 3);
// in other placements computations keep their alone bandwidth (§IV-C2).
func TestE3DiagonalContention(t *testing.T) {
	r := resultFor(t, "henri")
	for _, pr := range r.Placements {
		last := pr.Measured.Points[len(pr.Measured.Points)-1]
		sameNode := pr.Placement.Comp == pr.Placement.Comm
		drop := (last.CompAlone - last.CompPar) / last.CompAlone
		if sameNode && drop < 0.02 {
			t.Errorf("%v: same-node computations must lose bandwidth (drop %.1f%%)", pr.Placement, 100*drop)
		}
		if !sameNode && drop > 0.02 {
			t.Errorf("%v: cross-node computations must be almost unimpacted (drop %.1f%%)", pr.Placement, 100*drop)
		}
	}
}

// TestE3CommThrottledFirstWithFloor: §II-A hypotheses — communications
// are reduced first under contention, but never below a guaranteed
// minimum; computations only degrade afterwards.
func TestE3CommThrottledFirstWithFloor(t *testing.T) {
	r := resultFor(t, "henri")
	for _, pr := range r.Placements {
		if pr.Placement.Comp != pr.Placement.Comm {
			continue
		}
		floorSeen := 1.0
		for _, pt := range pr.Measured.Points {
			frac := pt.CommPar / pt.CommAlone
			if frac < floorSeen {
				floorSeen = frac
			}
		}
		if floorSeen > 0.5 {
			t.Errorf("%v: communications never significantly throttled (min %.0f%%)", pr.Placement, 100*floorSeen)
		}
		if floorSeen < 0.15 {
			t.Errorf("%v: communication floor violated (min %.0f%% of nominal)", pr.Placement, 100*floorSeen)
		}
	}
}

// TestE4RemoteSymmetry: on henri-subnuma, placements using different
// remote NUMA nodes behave identically regardless of which nodes they are
// (the topology symmetries of §IV-B(b)).
func TestE4RemoteSymmetry(t *testing.T) {
	r := resultFor(t, "henri-subnuma")
	get := func(comp, comm NodeID) *eval.PlacementResult {
		for _, pr := range r.Placements {
			if pr.Placement.Comp == comp && pr.Placement.Comm == comm {
				return pr
			}
		}
		t.Fatalf("missing placement %d/%d", comp, comm)
		return nil
	}
	// (comp@2, comm@3) and (comp@3, comm@2): different remote nodes.
	a, b := get(2, 3), get(3, 2)
	for i := range a.Measured.Points {
		pa, pb := a.Measured.Points[i], b.Measured.Points[i]
		if relDiff(pa.CompPar, pb.CompPar) > 0.05 {
			t.Errorf("n=%d: remote cross placements differ in compute (%.2f vs %.2f)", pa.N, pa.CompPar, pb.CompPar)
		}
	}
	// Same-remote-node placement (2,2) must show MORE contention than the
	// different-remote-node one (2,3): the bottleneck is the memory
	// controller, not the inter-socket link (§IV-C2 lessons learned).
	same, diff := get(2, 2), get(2, 3)
	lastSame := same.Measured.Points[len(same.Measured.Points)-1]
	lastDiff := diff.Measured.Points[len(diff.Measured.Points)-1]
	if lastSame.CompPar >= lastDiff.CompPar {
		t.Errorf("same remote node must hurt computations more: %.2f vs %.2f", lastSame.CompPar, lastDiff.CompPar)
	}
}

// TestE5DiabloNICLocality: the diablo NIC locality split (§IV-B(c)):
// ≈12.1 GB/s with comm data on node 0 vs ≈22.4 GB/s on node 1 (ratio
// ≈1.85), and almost no contention anywhere.
func TestE5DiabloNICLocality(t *testing.T) {
	r := resultFor(t, "diablo")
	var comm0, comm1 float64
	for _, pr := range r.Placements {
		pt := pr.Measured.Points[0]
		if pr.Placement.Comm == 0 {
			comm0 = pt.CommAlone
		} else {
			comm1 = pt.CommAlone
		}
	}
	ratio := comm1 / comm0
	if ratio < 1.6 || ratio > 2.1 {
		t.Errorf("diablo NIC locality ratio %.2f, want ≈1.85", ratio)
	}
	// Almost no contention: even at full core count, communications keep
	// most of their bandwidth in every placement.
	for _, pr := range r.Placements {
		last := pr.Measured.Points[len(pr.Measured.Points)-1]
		if last.CommPar < 0.5*last.CommAlone {
			t.Errorf("diablo %v: unexpected heavy contention (%.1f of %.1f GB/s)",
				pr.Placement, last.CommPar, last.CommAlone)
		}
	}
}

// TestE6OccigenCommNeverThrottled: §IV-B(d) — on occigen only
// computations are impacted; communications always keep nominal rate.
func TestE6OccigenCommNeverThrottled(t *testing.T) {
	r := resultFor(t, "occigen")
	for _, pr := range r.Placements {
		for _, pt := range pr.Measured.Points {
			if relDiff(pt.CommPar, pt.CommAlone) > 0.02 {
				t.Errorf("occigen %v n=%d: comm %.2f vs alone %.2f — must be unimpacted",
					pr.Placement, pt.N, pt.CommPar, pt.CommAlone)
			}
		}
		// ... and computations DO pay in the same-remote-node case.
		if pr.Placement.Comp == 1 && pr.Placement.Comm == 1 {
			last := pr.Measured.Points[len(pr.Measured.Points)-1]
			if last.CompPar >= last.CompAlone {
				t.Error("occigen remote computations must be impacted")
			}
		}
	}
}

// TestE2StackedShape: Figure 2's qualitative shape on henri-subnuma
// local-local: the stacked parallel total peaks above the compute-alone
// maximum, at fewer cores, then declines.
func TestE2StackedShape(t *testing.T) {
	r := resultFor(t, "henri-subnuma")
	st, err := eval.StackedFor(r, Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	var totalMax, aloneMax float64
	var nTotalMax, nAloneMax int
	for _, p := range st.Points {
		if p.TotalPar > totalMax {
			totalMax, nTotalMax = p.TotalPar, p.N
		}
		if p.CompAlone > aloneMax {
			aloneMax, nAloneMax = p.CompAlone, p.N
		}
	}
	if totalMax <= aloneMax {
		t.Errorf("TparMax (%.1f) must exceed TseqMax (%.1f): DMA extracts extra bandwidth", totalMax, aloneMax)
	}
	if nTotalMax >= nAloneMax {
		t.Errorf("NparMax (%d) must come before NseqMax (%d)", nTotalMax, nAloneMax)
	}
	last := st.Points[len(st.Points)-1]
	if last.TotalPar >= totalMax {
		t.Error("stacked total must decline after its maximum")
	}
}

// TestE9Determinism: the whole evaluation is bit-for-bit reproducible.
func TestE9Determinism(t *testing.T) {
	again, err := Evaluate("henri", 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := resultFor(t, "henri")
	if again.Errors != ref.Errors {
		t.Errorf("evaluation not deterministic: %+v vs %+v", again.Errors, ref.Errors)
	}
}

// TestReproductionGate is the pre-merge reproduction gate (`make check`
// runs `go test -run TestReproduction ./...`): the full testbed
// evaluation must complete for all six Table I platforms and land inside
// the paper's headline error bounds. It reuses the shared testbed
// evaluation, so the gate adds no runtime over the targeted TestE* cases.
func TestReproductionGate(t *testing.T) {
	if len(testbedResults) != 6 {
		t.Fatalf("expected 6 evaluated platforms, got %d", len(testbedResults))
	}
	for _, r := range testbedResults {
		if len(r.Placements) == 0 {
			t.Errorf("%s: no placements evaluated", r.Platform)
		}
		if r.Errors.Average <= 0 || r.Errors.Average > 10 {
			t.Errorf("%s: implausible average model error %.2f%%", r.Platform, r.Errors.Average)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	m := a
	if b > m {
		m = b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / m
}

// TestE7PyxisSoftSaturation: §IV-B(e) — on pyxis the memory bandwidth for
// computations "does not scale well when it gets closer to the threshold":
// the last pre-saturation cores add visibly less than BCompSeq each.
func TestE7PyxisSoftSaturation(t *testing.T) {
	r := resultFor(t, "pyxis")
	for _, pr := range r.Placements {
		if pr.Placement != (Placement{Comp: 0, Comm: 0}) {
			continue
		}
		pts := pr.Measured.Points
		perCore := pts[0].CompAlone
		// Gain from the antepenultimate pre-knee step.
		knee := r.Model.Local.NSeqMax
		if knee < 4 || knee >= len(pts) {
			t.Fatalf("unexpected knee %d", knee)
		}
		gain := pts[knee-1].CompAlone - pts[knee-2].CompAlone
		if gain > 0.8*perCore {
			t.Errorf("pyxis near-threshold gain %.2f should bend below the per-core rate %.2f", gain, perCore)
		}
	}
}

// TestE8DahuShapes: dahu reproduces the Intel contention shapes with
// Omni-Path numbers: nominal comm ≈ 10.3 GB/s, throttled to its floor
// under full local contention.
func TestE8DahuShapes(t *testing.T) {
	r := resultFor(t, "dahu")
	local := r.Model.Local
	if local.BCommSeq < 9.5 || local.BCommSeq > 11 {
		t.Errorf("dahu nominal comm %.2f, want ≈10.3 (Omni-Path)", local.BCommSeq)
	}
	if local.Alpha > 0.5 {
		t.Errorf("dahu must throttle communications under contention (α=%.2f)", local.Alpha)
	}
	if local.NParMax >= local.NSeqMax {
		t.Errorf("dahu must show a δl region (NPar=%d NSeq=%d)", local.NParMax, local.NSeqMax)
	}
}

// TestE5DiabloModelStillAccurate: §IV-B(c) — "our model succeeds in
// predicting performances, even if there is almost no contention".
func TestE5DiabloModelStillAccurate(t *testing.T) {
	e := resultFor(t, "diablo").Errors
	if e.Average > 3.0 {
		t.Errorf("diablo average error %.2f%%, paper reports 1.44%%", e.Average)
	}
	// And the calibrated remote nominal must carry the NIC locality.
	m := resultFor(t, "diablo").Model
	if m.Remote.BCommSeq < 1.5*m.Local.BCommSeq {
		t.Errorf("calibrated nominals must carry the locality split (%.1f vs %.1f)",
			m.Remote.BCommSeq, m.Local.BCommSeq)
	}
}

// TestPredictionsMatchEquationValues: the evaluation's stored predictions
// must be exactly what the model computes (no drift between the figure
// data and the equations).
func TestPredictionsMatchEquationValues(t *testing.T) {
	r := resultFor(t, "henri")
	for _, pr := range r.Placements {
		for i, pt := range pr.Measured.Points {
			want, err := r.Model.Predict(pt.N, pr.Placement)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Predicted[i] != want {
				t.Fatalf("%v n=%d: stored prediction diverges from the model", pr.Placement, pt.N)
			}
		}
	}
}

// TestE9SeedRobustness: the headline holds for more than the default seed.
func TestE9SeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed evaluation")
	}
	for _, seed := range []uint64{7, 12345} {
		results, err := EvaluateTestbed(seed)
		if err != nil {
			t.Fatal(err)
		}
		var comm []float64
		for _, r := range results {
			comm = append(comm, r.Errors.CommAll)
		}
		if m := stats.Mean(comm); m > 4.0 {
			t.Errorf("seed %d: average comm error %.2f%% exceeds 4%%", seed, m)
		}
	}
}
