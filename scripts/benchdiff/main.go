// Command benchdiff compares a fresh benchjson document against the
// committed baseline and fails on regressions, so instrumentation
// overhead creep is caught in review instead of six PRs later.
//
// Usage:
//
//	go test -bench 'Halo' -benchmem -run '^$' ./... \
//	  | go run ./scripts/benchjson \
//	  | go run ./scripts/benchdiff -baseline BENCH_baseline.json
//	go run ./scripts/benchdiff -baseline BENCH_baseline.json -new fresh.json
//
// Benchmarks are matched by (package, name); entries present on only one
// side are reported but never fail the run (benchmarks come and go).
// A matched benchmark fails when ns/op or allocs/op grows by more than
// -tolerance (default 0.15 = 15%) over the baseline. Timings on shared
// CI runners are noisy — treat a benchdiff failure as "measure properly
// before merging", which is why the Makefile wires it as advisory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result mirrors scripts/benchjson's output entry.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type document struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline benchjson document")
	newPath := flag.String("new", "-", "fresh benchjson document ('-' reads stdin)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional growth in ns/op and allocs/op")
	flag.Parse()

	regressions, err := run(os.Stdout, *baselinePath, *newPath, os.Stdin, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", regressions, *tolerance*100)
		os.Exit(1)
	}
}

// run diffs the two documents, prints the report to w and returns how
// many benchmarks regressed beyond tolerance.
func run(w io.Writer, baselinePath, newPath string, stdin io.Reader, tolerance float64) (int, error) {
	if tolerance < 0 {
		return 0, fmt.Errorf("negative tolerance %v", tolerance)
	}
	baseline, err := loadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	var fresh []Result
	if newPath == "-" {
		fresh, err = load(stdin, "stdin")
	} else {
		fresh, err = loadFile(newPath)
	}
	if err != nil {
		return 0, err
	}

	base := index(baseline)
	regressions := 0
	matched := 0
	for _, f := range sorted(fresh) {
		b, ok := base[key(f)]
		if !ok {
			fmt.Fprintf(w, "  new      %-50s (no baseline entry)\n", key(f))
			continue
		}
		matched++
		delete(base, key(f))
		nsGrowth := growth(b.NsPerOp, f.NsPerOp)
		allocGrowth := growth(b.AllocsPerOp, f.AllocsPerOp)
		status := "ok"
		if nsGrowth > tolerance || allocGrowth > tolerance {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "  %-8s %-50s ns/op %10.0f -> %10.0f (%+6.1f%%)  allocs/op %6.0f -> %6.0f (%+6.1f%%)\n",
			status, key(f), b.NsPerOp, f.NsPerOp, nsGrowth*100, b.AllocsPerOp, f.AllocsPerOp, allocGrowth*100)
	}
	for _, k := range sortedKeys(base) {
		fmt.Fprintf(w, "  absent   %-50s (in baseline, not in fresh run)\n", k)
	}
	if matched == 0 {
		return 0, fmt.Errorf("no benchmarks in common between %s and %s", baselinePath, newPath)
	}
	return regressions, nil
}

// growth returns the fractional increase from old to new; shrinkage and
// a zero/absent old value (e.g. no -benchmem allocs column) report 0.
func growth(old, new float64) float64 {
	if old <= 0 || new <= old {
		return 0
	}
	return (new - old) / old
}

func key(r Result) string { return r.Package + "." + r.Name }

func index(rs []Result) map[string]Result {
	m := make(map[string]Result, len(rs))
	for _, r := range rs {
		m[key(r)] = r
	}
	return m
}

func sorted(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

func sortedKeys(m map[string]Result) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func loadFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return load(f, path)
}

func load(r io.Reader, name string) ([]Result, error) {
	var doc document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", name)
	}
	return doc.Benchmarks, nil
}
