package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, path string, rs []Result) {
	t.Helper()
	b, err := json.Marshal(document{Benchmarks: rs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchdiff(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	writeDoc(t, basePath, []Result{
		{Package: "p", Name: "BenchmarkStable", NsPerOp: 1000, AllocsPerOp: 10},
		{Package: "p", Name: "BenchmarkFaster", NsPerOp: 1000, AllocsPerOp: 10},
		{Package: "p", Name: "BenchmarkSlower", NsPerOp: 1000, AllocsPerOp: 10},
		{Package: "p", Name: "BenchmarkAllocs", NsPerOp: 1000, AllocsPerOp: 10},
		{Package: "p", Name: "BenchmarkRetired", NsPerOp: 1000, AllocsPerOp: 10},
	})
	freshPath := filepath.Join(dir, "fresh.json")
	writeDoc(t, freshPath, []Result{
		{Package: "p", Name: "BenchmarkStable", NsPerOp: 1100, AllocsPerOp: 10}, // +10%: within 15%
		{Package: "p", Name: "BenchmarkFaster", NsPerOp: 500, AllocsPerOp: 5},   // improvements never fail
		{Package: "p", Name: "BenchmarkSlower", NsPerOp: 1200, AllocsPerOp: 10}, // +20% ns/op: regression
		{Package: "p", Name: "BenchmarkAllocs", NsPerOp: 1000, AllocsPerOp: 13}, // +30% allocs: regression
		{Package: "p", Name: "BenchmarkNew", NsPerOp: 9999, AllocsPerOp: 999},   // no baseline: informational
	})

	var out strings.Builder
	regressions, err := run(&out, basePath, freshPath, nil, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 2 {
		t.Errorf("regressions = %d, want 2\n%s", regressions, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"REGRESSED p.BenchmarkSlower",
		"REGRESSED p.BenchmarkAllocs",
		"ok       p.BenchmarkStable",
		"ok       p.BenchmarkFaster",
		"new      p.BenchmarkNew",
		"absent   p.BenchmarkRetired",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestBenchdiffStdinAndErrors(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	writeDoc(t, basePath, []Result{{Package: "p", Name: "BenchmarkA", NsPerOp: 100}})

	stdin := strings.NewReader(`{"benchmarks":[{"package":"p","name":"BenchmarkA","ns_per_op":90}]}`)
	var out strings.Builder
	regressions, err := run(&out, basePath, "-", stdin, 0.15)
	if err != nil || regressions != 0 {
		t.Errorf("stdin diff: regressions=%d err=%v", regressions, err)
	}

	if _, err := run(&out, basePath, filepath.Join(dir, "missing.json"), nil, 0.15); err == nil {
		t.Error("missing fresh file accepted")
	}
	if _, err := run(&out, basePath, "-", strings.NewReader("{}"), 0.15); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := run(&out, basePath, "-", strings.NewReader(`{"benchmarks":[{"package":"q","name":"BenchmarkB"}]}`), 0.15); err == nil {
		t.Error("disjoint benchmark sets accepted (nothing compared)")
	}
	if _, err := run(&out, basePath, "-", strings.NewReader("{}"), -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestGrowth(t *testing.T) {
	cases := []struct{ old, new, want float64 }{
		{100, 115, 0.15},
		{100, 90, 0},
		{0, 50, 0}, // no baseline column: not comparable
		{100, 100, 0},
	}
	for _, tc := range cases {
		if got := growth(tc.old, tc.new); got != tc.want {
			t.Errorf("growth(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}
