// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, suitable for committing as a benchmark
// baseline (see BENCH_baseline.json) and diffing across changes.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./scripts/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) ([]Result, error) {
	var results []Result
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." headers without a result column
		}
		r := Result{Package: pkg, Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", fields[0], fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
