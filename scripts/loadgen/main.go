// Command loadgen drives sustained prediction traffic at a memserve
// instance and reports achieved throughput and tail latency against
// budgets — the load proof for the live observability plane: both
// numbers are read back from the server's own /metrics scrape, not from
// client-side stopwatches.
//
// Usage:
//
//	go run ./scripts/loadgen                        # self-host a server in-process
//	go run ./scripts/loadgen -addr localhost:8080   # target a running memserve
//	go run ./scripts/loadgen -duration 10s -workers 64 -qps-budget 5000 -p99-budget 5ms
//
// With budgets set, loadgen exits 1 when achieved QPS falls below
// -qps-budget or the server-reported p99 exceeds -p99-budget; with the
// defaults (0) it only reports. QPS is computed from the delta of
// memcontention_serve_requests_total{code="200"} between two scrapes
// bracketing the run; p99 comes from the rolling-window gauge
// memcontention_serve_latency_quantile_seconds{quantile="0.99"}.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
	"memcontention/internal/serve"
)

type options struct {
	addr      string
	platform  string
	kernel    string
	n         int
	workers   int
	duration  time.Duration
	qpsBudget float64
	p99Budget time.Duration
	seed      uint64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "target a running memserve at this address (default: self-host one in-process)")
	flag.StringVar(&o.platform, "platform", "henri", "platform to request predictions for")
	flag.StringVar(&o.kernel, "kernel", "nt-memset", "kernel to request predictions for")
	flag.IntVar(&o.n, "n", 8, "process count in the requested scenario")
	flag.IntVar(&o.workers, "workers", 4*runtime.GOMAXPROCS(0), "concurrent client workers")
	flag.DurationVar(&o.duration, "duration", 3*time.Second, "how long to sustain load")
	flag.Float64Var(&o.qpsBudget, "qps-budget", 0, "fail unless achieved QPS >= this (0 disables)")
	flag.DurationVar(&o.p99Budget, "p99-budget", 0, "fail unless server-side p99 <= this (0 disables)")
	flag.Uint64Var(&o.seed, "seed", 1, "calibration seed for the self-hosted server")
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, o)
	stop()
	if code := checkpoint.Report(os.Stderr, "loadgen", err); code != 0 {
		os.Exit(code)
	}
}

func run(ctx context.Context, stdout io.Writer, o options) error {
	if o.workers < 1 || o.duration <= 0 {
		return fmt.Errorf("loadgen: need workers >= 1 and duration > 0 (got %d, %v)", o.workers, o.duration)
	}
	base, shutdown, err := target(ctx, o)
	if err != nil {
		return err
	}
	defer shutdown()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.workers * 2,
		MaxIdleConnsPerHost: o.workers * 2,
	}}
	url := fmt.Sprintf("%s/predict?platform=%s&n=%d&mcomp=0&mcomm=1&kernel=%s",
		base, o.platform, o.n, o.kernel)

	// One warm-up request pays the calibration cost outside the window and
	// verifies the target actually serves this scenario.
	if err := hit(ctx, client, url); err != nil {
		return fmt.Errorf("loadgen: warm-up request: %w", err)
	}

	before, err := scrape(ctx, client, base)
	if err != nil {
		return fmt.Errorf("loadgen: pre-run scrape: %w", err)
	}

	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	var sent, failed atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				if err := hit(runCtx, client, url); err != nil {
					if runCtx.Err() == nil {
						failed.Add(1)
					}
					continue
				}
				sent.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrape(ctx, client, base)
	if err != nil {
		return fmt.Errorf("loadgen: post-run scrape: %w", err)
	}

	okBefore, _ := before.Value(`memcontention_serve_requests_total{code="200"}`)
	okAfter, _ := after.Value(`memcontention_serve_requests_total{code="200"}`)
	served := okAfter - okBefore
	qps := served / elapsed.Seconds()
	p99, p99ok := after.Value(`memcontention_serve_latency_quantile_seconds{quantile="0.99"}`)
	p50, _ := after.Value(`memcontention_serve_latency_quantile_seconds{quantile="0.5"}`)
	shed := delta(before, after, "memcontention_serve_shed_total")
	hits := delta(before, after, "memcontention_serve_cache_hits_total")

	fmt.Fprintf(stdout, "loadgen: %s for %v with %d workers against %s\n", url, elapsed.Round(time.Millisecond), o.workers, base)
	fmt.Fprintf(stdout, "loadgen: served=%.0f (client ok=%d failed=%d shed=%.0f cache-hits=%.0f)\n",
		served, sent.Load(), failed.Load(), shed, hits)
	fmt.Fprintf(stdout, "loadgen: qps=%.0f p50=%s p99=%s (server-reported, rolling window)\n",
		qps, seconds(p50), seconds(p99))

	if o.qpsBudget > 0 && qps < o.qpsBudget {
		return fmt.Errorf("loadgen: achieved %.0f QPS, budget %.0f", qps, o.qpsBudget)
	}
	if o.p99Budget > 0 {
		if !p99ok {
			return fmt.Errorf("loadgen: p99 gauge missing from /metrics; cannot check budget")
		}
		if p99 > o.p99Budget.Seconds() {
			return fmt.Errorf("loadgen: p99 %s over budget %v", seconds(p99), o.p99Budget)
		}
	}
	return nil
}

// target resolves the base URL: a user-supplied address, or a fully
// warmed in-process server bound to a loopback port.
func target(ctx context.Context, o options) (string, func(), error) {
	if o.addr != "" {
		return "http://" + strings.TrimPrefix(o.addr, "http://"), func() {}, nil
	}
	srv, err := serve.New(serve.Options{
		Platforms: []string{o.platform},
		Seed:      o.seed,
		Registry:  obs.NewRegistry(),
	})
	if err != nil {
		return "", nil, err
	}
	if err := srv.Warm(ctx); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srvCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(srvCtx, ln)
	}()
	shutdown := func() {
		cancel()
		<-done
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// hit performs one prediction request, draining the body so the
// connection is reused.
func hit(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// scrape fetches and parses the live Prometheus exposition.
func scrape(ctx context.Context, client *http.Client, base string) (*obs.ExpositionStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	return obs.ParseExposition(string(b))
}

func delta(before, after *obs.ExpositionStats, family string) float64 {
	return after.SumFamily(family) - before.SumFamily(family)
}

// seconds renders a latency gauge value as a duration string.
func seconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
