package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSelfHosted runs a short self-hosted burst and checks the
// report comes from the live scrape (served count and quantiles present).
func TestLoadgenSelfHosted(t *testing.T) {
	var out strings.Builder
	o := options{
		platform: "henri", kernel: "nt-memset", n: 8,
		workers: 2, duration: 300 * time.Millisecond, seed: 1,
	}
	if err := run(context.Background(), &out, o); err != nil {
		t.Fatalf("loadgen run: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"served=", "qps=", "p99=", "cache-hits="} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestLoadgenBudgetViolation proves an unmeetable budget fails the run.
func TestLoadgenBudgetViolation(t *testing.T) {
	var out strings.Builder
	o := options{
		platform: "henri", kernel: "nt-memset", n: 8,
		workers: 1, duration: 200 * time.Millisecond, seed: 1,
		qpsBudget: 1e12,
	}
	err := run(context.Background(), &out, o)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("impossible QPS budget did not fail the run: %v", err)
	}
}

// TestLoadgenRejectsBadOptions keeps the flag validation honest.
func TestLoadgenRejectsBadOptions(t *testing.T) {
	err := run(context.Background(), &strings.Builder{}, options{workers: 0, duration: time.Second})
	if err == nil {
		t.Fatal("workers=0 accepted")
	}
	err = run(context.Background(), &strings.Builder{}, options{workers: 1, duration: 0})
	if err == nil {
		t.Fatal("duration=0 accepted")
	}
}
