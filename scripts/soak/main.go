// Command soak is the kill-and-resume soak harness for the checkpoint
// layer (docs/resilience.md): it runs the full Table II pipeline, kills
// it at seeded-random unit boundaries, resumes from the journal, and
// asserts that the final artifacts are byte-identical to an uninterrupted
// run — with and without a fault plan armed on the DES cross-check, plus
// a torn-tail and a corrupt-journal round that must recover without
// panicking.
//
// Kills are simulated in-process by canceling the campaign context from
// the journal's RecordHook: because every append is fsynced before the
// hook runs, cancel-after-record is exactly the on-disk state a SIGKILL
// after the fsync would leave. The torn-tail round additionally chops
// bytes off the journal to model a kill mid-write.
//
// Usage: go run ./scripts/soak [-rounds 6] [-seed 1] [-v]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/faults"
	"memcontention/internal/rng"
)

// platforms keeps a soak run fast while covering sample and non-sample
// placements plus two different NUMA layouts.
var platforms = []string{"henri", "henri-subnuma", "dahu"}

var verbose bool

func logf(format string, args ...any) {
	if verbose {
		fmt.Printf(format+"\n", args...)
	}
}

func main() {
	rounds := flag.Int("rounds", 6, "minimum interruptions per scenario")
	seed := flag.Uint64("seed", 1, "seed for the kill points and the campaign noise")
	flag.BoolVar(&verbose, "v", false, "log every kill and resume")
	flag.Parse()

	if err := soak(*rounds, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("soak: PASS")
}

func soak(rounds int, seed uint64) error {
	scenarios := []struct {
		name string
		plan *faults.Plan
	}{
		{"no-faults", nil},
		{"faults", &faults.Plan{
			Seed: 7,
			Events: []faults.Event{
				{At: 0.001, Kind: faults.LinkDegrade, Factor: 0.5, Duration: 0.01},
				{At: 0.002, Kind: faults.MsgDelay, Extra: 0.001, Probability: 0.5, Duration: 0.05},
			},
		}},
	}
	for _, sc := range scenarios {
		if err := soakScenario(sc.name, sc.plan, rounds, seed); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	return nil
}

func soakScenario(name string, plan *faults.Plan, rounds int, seed uint64) error {
	dir, err := os.MkdirTemp("", "memcontention-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Uninterrupted baseline.
	baseline, err := campaign.Pipeline(campaign.Config{Seed: seed, FaultPlan: plan}, platforms)
	if err != nil {
		return fmt.Errorf("baseline pipeline: %w", err)
	}
	baseDir := filepath.Join(dir, "baseline")
	if err := baseline.Write(baseDir); err != nil {
		return err
	}

	// Kill-and-resume loop: keep interrupting at seeded unit boundaries
	// until the pipeline completes, with at least `rounds` kills. Two of
	// the kills additionally corrupt the journal tail (torn write, then
	// garbage) before the resume, which must recover cleanly.
	jpath := filepath.Join(dir, "run.ckpt")
	kills := 0
	killPoints := rng.New(seed, "soak|"+name)
	var resumed *campaign.Artifacts
	for attempt := 0; ; attempt++ {
		if attempt > 10*rounds+100 {
			return fmt.Errorf("pipeline did not complete after %d attempts", attempt)
		}
		j, err := checkpoint.Open(jpath)
		if err != nil {
			return fmt.Errorf("attempt %d: reopen journal: %w", attempt, err)
		}
		if j.RecoveredBytes() > 0 {
			logf("  [%s] attempt %d: recovered journal, truncated %d corrupt bytes, %d entries intact",
				name, attempt, j.RecoveredBytes(), j.LoadedEntries())
		}
		ctx, cancel := context.WithCancel(context.Background())
		if kills < rounds {
			// Cancel 1–3 freshly recorded units past what the journal
			// already holds, so every attempt makes progress and dies.
			killAt := j.LoadedEntries() + 1 + killPoints.Intn(3)
			j.RecordHook = func(_ string, total int) {
				if total >= killAt {
					cancel()
				}
			}
		}
		resumed, err = campaign.Pipeline(campaign.Config{
			Seed:      seed,
			Context:   ctx,
			Journal:   j,
			FaultPlan: plan,
		}, platforms)
		cancel()
		entries := j.Len()
		if cerr := j.Close(); cerr != nil {
			return cerr
		}
		if err == nil {
			logf("  [%s] attempt %d: completed with %d journal entries after %d kills",
				name, attempt, entries, kills)
			break
		}
		if !checkpoint.IsCanceled(err) {
			return fmt.Errorf("attempt %d: pipeline failed mid-soak: %w", attempt, err)
		}
		kills++
		logf("  [%s] attempt %d: killed at %d journal entries", name, attempt, entries)
		switch kills {
		case 2:
			// Torn tail: the process died mid-append.
			if err := chopFile(jpath, 7); err != nil {
				return err
			}
			logf("  [%s] tore the journal tail", name)
		case 4:
			// Garbage tail: the disk wrote junk past the valid prefix.
			if err := appendFile(jpath, []byte("XXXX corrupt entry\nmore junk")); err != nil {
				return err
			}
			logf("  [%s] appended garbage to the journal", name)
		}
	}
	if kills < rounds {
		return fmt.Errorf("only %d kills, want >= %d", kills, rounds)
	}

	// The resumed artifacts must be byte-identical to the baseline.
	resDir := filepath.Join(dir, "resumed")
	if err := resumed.Write(resDir); err != nil {
		return err
	}
	if err := compareDirs(baseDir, resDir); err != nil {
		return err
	}
	fmt.Printf("soak: %s ok — %d kills (incl. torn + corrupt journal), artifacts byte-identical\n", name, kills)
	return nil
}

// chopFile truncates the last n bytes off path (at most its size).
func chopFile(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

func appendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareDirs asserts both directories hold the same files with the same
// bytes.
func compareDirs(wantDir, gotDir string) error {
	entries, err := os.ReadDir(wantDir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return errors.New("baseline produced no artifacts")
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(wantDir, e.Name()))
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(gotDir, e.Name()))
		if err != nil {
			return fmt.Errorf("resumed run missing artifact %s: %w", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("artifact %s differs between baseline and resumed run", e.Name())
		}
	}
	return nil
}
