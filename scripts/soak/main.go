// Command soak is the kill-and-resume soak harness for the checkpoint
// layer (docs/resilience.md): it runs the full Table II pipeline, kills
// it at seeded-random unit boundaries, resumes from the journal, and
// asserts that the final artifacts are byte-identical to an uninterrupted
// run — with and without a fault plan armed on the DES cross-check, plus
// a torn-tail and a corrupt-journal round that must recover without
// panicking.
//
// Kills are simulated in-process by canceling the campaign context from
// the journal's RecordHook: because every append is fsynced before the
// hook runs, cancel-after-record is exactly the on-disk state a SIGKILL
// after the fsync would leave. The torn-tail round additionally chops
// bytes off the journal to model a kill mid-write.
//
// With -parallel the harness additionally soaks the supervised sharded
// executor (docs/campaigns.md): it kills random workers mid-shard (the
// supervisor must restart them and re-enqueue their units), kills the
// whole parallel campaign at unit boundaries and resumes it from the
// shard journals, and poisons a unit to prove it lands in
// quarantine.jsonl — asserting after every phase that the artifacts are
// byte-identical to the sequential baseline.
//
// With -remote the harness instead soaks the lease-coordinated
// multi-process campaign with real memworker processes and real signals
// (SIGKILL, SIGSTOP/SIGCONT) — see remote.go.
//
// Usage: go run ./scripts/soak [-rounds 6] [-seed 1] [-parallel|-remote] [-v]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/faults"
	"memcontention/internal/rng"
)

// platforms keeps a soak run fast while covering sample and non-sample
// placements plus two different NUMA layouts.
var platforms = []string{"henri", "henri-subnuma", "dahu"}

var verbose bool

func logf(format string, args ...any) {
	if verbose {
		fmt.Printf(format+"\n", args...)
	}
}

func main() {
	rounds := flag.Int("rounds", 6, "minimum interruptions per scenario")
	seed := flag.Uint64("seed", 1, "seed for the kill points and the campaign noise")
	parallel := flag.Bool("parallel", false, "soak the supervised sharded executor instead of the sequential pipeline")
	remote := flag.Bool("remote", false, "soak the lease-coordinated multi-process campaign (real memworker processes and signals)")
	flag.BoolVar(&verbose, "v", false, "log every kill and resume")
	flag.Parse()

	var err error
	switch {
	case *remote:
		err = soakRemote(*seed)
	case *parallel:
		err = soakParallel(*rounds, *seed)
	default:
		err = soak(*rounds, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("soak: PASS")
}

func soak(rounds int, seed uint64) error {
	scenarios := []struct {
		name string
		plan *faults.Plan
	}{
		{"no-faults", nil},
		{"faults", &faults.Plan{
			Seed: 7,
			Events: []faults.Event{
				{At: 0.001, Kind: faults.LinkDegrade, Factor: 0.5, Duration: 0.01},
				{At: 0.002, Kind: faults.MsgDelay, Extra: 0.001, Probability: 0.5, Duration: 0.05},
			},
		}},
	}
	for _, sc := range scenarios {
		if err := soakScenario(sc.name, sc.plan, rounds, seed); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.name, err)
		}
	}
	return nil
}

func soakScenario(name string, plan *faults.Plan, rounds int, seed uint64) error {
	dir, err := os.MkdirTemp("", "memcontention-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Uninterrupted baseline.
	baseline, err := campaign.Pipeline(campaign.Config{Seed: seed, FaultPlan: plan}, platforms)
	if err != nil {
		return fmt.Errorf("baseline pipeline: %w", err)
	}
	baseDir := filepath.Join(dir, "baseline")
	if err := baseline.Write(baseDir); err != nil {
		return err
	}

	// Kill-and-resume loop: keep interrupting at seeded unit boundaries
	// until the pipeline completes, with at least `rounds` kills. Two of
	// the kills additionally corrupt the journal tail (torn write, then
	// garbage) before the resume, which must recover cleanly.
	jpath := filepath.Join(dir, "run.ckpt")
	kills := 0
	killPoints := rng.New(seed, "soak|"+name)
	var resumed *campaign.Artifacts
	for attempt := 0; ; attempt++ {
		if attempt > 10*rounds+100 {
			return fmt.Errorf("pipeline did not complete after %d attempts", attempt)
		}
		j, err := checkpoint.Open(jpath)
		if err != nil {
			return fmt.Errorf("attempt %d: reopen journal: %w", attempt, err)
		}
		if j.RecoveredBytes() > 0 {
			logf("  [%s] attempt %d: recovered journal, truncated %d corrupt bytes, %d entries intact",
				name, attempt, j.RecoveredBytes(), j.LoadedEntries())
		}
		ctx, cancel := context.WithCancel(context.Background())
		if kills < rounds {
			// Cancel 1–3 freshly recorded units past what the journal
			// already holds, so every attempt makes progress and dies.
			killAt := j.LoadedEntries() + 1 + killPoints.Intn(3)
			j.RecordHook = func(_ string, total int) {
				if total >= killAt {
					cancel()
				}
			}
		}
		resumed, err = campaign.Pipeline(campaign.Config{
			Seed:      seed,
			Context:   ctx,
			Journal:   j,
			FaultPlan: plan,
		}, platforms)
		cancel()
		entries := j.Len()
		if cerr := j.Close(); cerr != nil {
			return cerr
		}
		if err == nil {
			logf("  [%s] attempt %d: completed with %d journal entries after %d kills",
				name, attempt, entries, kills)
			break
		}
		if !checkpoint.IsCanceled(err) {
			return fmt.Errorf("attempt %d: pipeline failed mid-soak: %w", attempt, err)
		}
		kills++
		logf("  [%s] attempt %d: killed at %d journal entries", name, attempt, entries)
		switch kills {
		case 2:
			// Torn tail: the process died mid-append.
			if err := chopFile(jpath, 7); err != nil {
				return err
			}
			logf("  [%s] tore the journal tail", name)
		case 4:
			// Garbage tail: the disk wrote junk past the valid prefix.
			if err := appendFile(jpath, []byte("XXXX corrupt entry\nmore junk")); err != nil {
				return err
			}
			logf("  [%s] appended garbage to the journal", name)
		}
	}
	if kills < rounds {
		return fmt.Errorf("only %d kills, want >= %d", kills, rounds)
	}

	// The resumed artifacts must be byte-identical to the baseline.
	resDir := filepath.Join(dir, "resumed")
	if err := resumed.Write(resDir); err != nil {
		return err
	}
	if err := compareDirs(baseDir, resDir); err != nil {
		return err
	}
	fmt.Printf("soak: %s ok — %d kills (incl. torn + corrupt journal), artifacts byte-identical\n", name, kills)
	return nil
}

// soakParallel soaks the supervised sharded executor in three phases,
// each checked byte for byte against the sequential baseline:
//
//  1. worker churn — random workers are killed mid-shard at least
//     `rounds` times; the supervisor restarts each one and re-enqueues
//     its unit,
//  2. whole-campaign kills — the parallel campaign is canceled at unit
//     boundaries and resumed from its shard journals until it completes,
//     with at least `rounds` kills,
//  3. poison quarantine — one unit fails every attempt, must land in
//     quarantine.jsonl, and the campaign must recover completely once
//     the poison clears.
func soakParallel(rounds int, seed uint64) error {
	dir, err := os.MkdirTemp("", "memcontention-soak-parallel-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	baseline, err := campaign.Pipeline(campaign.Config{Seed: seed}, platforms)
	if err != nil {
		return fmt.Errorf("baseline pipeline: %w", err)
	}
	baseDir := filepath.Join(dir, "baseline")
	if err := baseline.Write(baseDir); err != nil {
		return err
	}
	const workers = 4

	// Phase 1: worker churn. Each campaign run kills workers at seeded
	// random unit starts (the stream is guarded — workers consult the
	// hook concurrently); runs repeat on fresh shard sets until at least
	// `rounds` kills have been absorbed, every run byte-checked.
	var mu sync.Mutex
	killPoints := rng.New(seed, "soak|parallel|workers")
	kills, restarts := 0, 0
	for attempt := 0; kills < rounds; attempt++ {
		if attempt > 10*rounds+100 {
			return fmt.Errorf("only %d worker kills after %d campaigns, want >= %d", kills, attempt, rounds)
		}
		res, err := campaign.ShardedPipeline(campaign.Config{Seed: seed}, campaign.ShardOptions{
			Workers: workers,
			Dir:     filepath.Join(dir, fmt.Sprintf("churn-%d.shards", attempt)),
			KillHook: func(shard int, key string) bool {
				mu.Lock()
				defer mu.Unlock()
				if kills < rounds && killPoints.Intn(2) == 0 {
					kills++
					logf("  [parallel] kill %d: worker %d holding %s", kills, shard, key)
					return true
				}
				return false
			},
		}, platforms)
		if err != nil {
			return fmt.Errorf("worker-churn campaign %d: %w", attempt, err)
		}
		restarts += res.Progress.Restarts
		churnDir := filepath.Join(dir, fmt.Sprintf("churn-%d", attempt))
		if err := res.Artifacts.Write(churnDir); err != nil {
			return err
		}
		if err := compareDirs(baseDir, churnDir); err != nil {
			return fmt.Errorf("worker churn campaign %d: %w", attempt, err)
		}
	}
	if restarts < rounds {
		return fmt.Errorf("only %d worker restarts for %d kills", restarts, kills)
	}
	fmt.Printf("soak: parallel worker churn ok — %d kills, %d restarts, artifacts byte-identical\n",
		kills, restarts)

	// Phase 2: whole-campaign kill-and-resume over persistent shard
	// sets. One sequence = kill the parallel campaign at seeded unit
	// boundaries and resume from the same shard directory until it
	// completes; sequences repeat on fresh shard sets until at least
	// `rounds` whole-campaign kills have been soaked, each completed
	// sequence byte-checked.
	campaignKills := 0
	boundaryPoints := rng.New(seed, "soak|parallel|campaign")
	for sequence := 0; campaignKills < rounds; sequence++ {
		if sequence > 10*rounds+100 {
			return fmt.Errorf("only %d campaign kills after %d sequences, want >= %d", campaignKills, sequence, rounds)
		}
		shardDir := filepath.Join(dir, fmt.Sprintf("resume-%d.shards", sequence))
		var final *campaign.ShardResult
		for attempt := 0; ; attempt++ {
			if attempt > 10*rounds+100 {
				return fmt.Errorf("parallel campaign did not complete after %d attempts", attempt)
			}
			ctx, cancel := context.WithCancel(context.Background())
			opts := campaign.ShardOptions{Workers: workers, Dir: shardDir}
			if campaignKills < rounds {
				done := 0
				killAfter := 1 + boundaryPoints.Intn(3)
				opts.UnitDone = func(completed int) {
					mu.Lock()
					defer mu.Unlock()
					done++
					if done >= killAfter {
						cancel()
					}
				}
			}
			final, err = campaign.ShardedPipeline(campaign.Config{Seed: seed, Context: ctx}, opts, platforms)
			cancel()
			if err == nil {
				logf("  [parallel] sequence %d attempt %d: completed (%d campaign kills so far)",
					sequence, attempt, campaignKills)
				break
			}
			if !checkpoint.IsCanceled(err) {
				return fmt.Errorf("attempt %d: parallel campaign failed mid-soak: %w", attempt, err)
			}
			campaignKills++
			logf("  [parallel] sequence %d attempt %d: campaign killed with %d/%d units done",
				sequence, attempt, final.Progress.Done, final.Progress.Units)
		}
		resumeDir := filepath.Join(dir, fmt.Sprintf("resume-%d", sequence))
		if err := final.Artifacts.Write(resumeDir); err != nil {
			return err
		}
		if err := compareDirs(baseDir, resumeDir); err != nil {
			return fmt.Errorf("campaign kill-and-resume sequence %d: %w", sequence, err)
		}
	}
	fmt.Printf("soak: parallel kill-and-resume ok — %d campaign kills, artifacts byte-identical\n", campaignKills)

	// Phase 3: poison quarantine, then recovery after the poison clears.
	poisonDir := filepath.Join(dir, "poison.shards")
	poisoned := ""
	_, err = campaign.ShardedPipeline(campaign.Config{Seed: seed}, campaign.ShardOptions{
		Workers:     workers,
		Dir:         poisonDir,
		MaxAttempts: 2,
		FaultHook: func(key string, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			if poisoned == "" {
				poisoned = key
			}
			if key == poisoned {
				return errors.New("soak: injected poison")
			}
			return nil
		},
	}, platforms)
	var qerr *campaign.QuarantineError
	if !errors.As(err, &qerr) {
		return fmt.Errorf("poisoned campaign should quarantine, got: %w", err)
	}
	if len(qerr.Records) != 1 || qerr.Records[0].Key != poisoned {
		return fmt.Errorf("quarantine = %+v, want exactly %q", qerr.Records, poisoned)
	}
	disk, err := campaign.ReadQuarantine(poisonDir)
	if err != nil {
		return fmt.Errorf("read quarantine report: %w", err)
	}
	if len(disk) != 1 || disk[0].Key != poisoned {
		return fmt.Errorf("quarantine.jsonl = %+v, want %q", disk, poisoned)
	}
	logf("  [parallel] quarantined %s after %d attempts", disk[0].Key, disk[0].Attempts)
	// Poison cleared: the same shard set resumes and completes fully.
	cured, err := campaign.ShardedPipeline(campaign.Config{Seed: seed}, campaign.ShardOptions{
		Workers: workers,
		Dir:     poisonDir,
	}, platforms)
	if err != nil {
		return fmt.Errorf("recovery after quarantine: %w", err)
	}
	curedDir := filepath.Join(dir, "cured")
	if err := cured.Artifacts.Write(curedDir); err != nil {
		return err
	}
	if err := compareDirs(baseDir, curedDir); err != nil {
		return fmt.Errorf("post-quarantine recovery: %w", err)
	}
	fmt.Printf("soak: parallel quarantine ok — %s isolated in quarantine.jsonl, recovery byte-identical\n", poisoned)
	return nil
}

// chopFile truncates the last n bytes off path (at most its size).
func chopFile(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

func appendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareDirs asserts both directories hold the same files with the same
// bytes.
func compareDirs(wantDir, gotDir string) error {
	entries, err := os.ReadDir(wantDir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return errors.New("baseline produced no artifacts")
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(wantDir, e.Name()))
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(gotDir, e.Name()))
		if err != nil {
			return fmt.Errorf("resumed run missing artifact %s: %w", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("artifact %s differs between baseline and resumed run", e.Name())
		}
	}
	return nil
}
