// The -remote phase soaks the lease-coordinated multi-process campaign
// (docs/campaigns.md, "Remote campaigns") with real memworker processes
// and real signals — the one failure surface the in-process tests
// cannot reach. A first worker claims a shard and is SIGSTOPped mid-unit
// so its lease expires while the process lives on; two more workers are
// SIGKILLed mid-unit. A fresh worker started after the TTL must take
// every shard over with no manual cleanup and drain the campaign. The
// frozen worker is then SIGCONTed: a genuine zombie that still believes
// it owns its shard and keeps writing — its late appends must land in
// its own dead-epoch journal and merge away against the successor's
// re-execution. Finally `memworker -merge` assembles the artifacts,
// which must be byte-identical to an uninterrupted sequential run.
//
// The choreography is deliberately sequenced so every assertion is
// deterministic: the zombie starts alone (no claim races — it takes the
// first non-empty shard), and the kill victims die strictly before
// their first unit can journal (killDelay < unitDelay), so the
// takeover worker always finds the entire campaign pending.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
)

// Lease timings for the remote phase: short enough that a full
// orphan-takeover cycle fits in a few seconds of wall clock, with the
// heartbeat comfortably under the TTL/3 validation bound.
const (
	remoteTTL       = 2 * time.Second
	remoteHeartbeat = 250 * time.Millisecond

	// staleWait is how long the harness waits after the last signal
	// before starting the takeover worker: the TTL plus the default
	// grace (TTL/2), plus one heartbeat that may have landed just
	// before the signal, plus margin for slow CI runners.
	staleWait = remoteTTL + remoteTTL/2 + remoteHeartbeat + 750*time.Millisecond

	// unitDelay throttles the doomed workers so every signal lands
	// while their first unit is still in flight — nothing journaled,
	// every shard an orphan to take over.
	unitDelay = 1500 * time.Millisecond

	// killDelay is how long the SIGKILL victims get to run. Strictly
	// less than unitDelay: a worker's first journal append happens no
	// earlier than claim time + unitDelay >= spawn + unitDelay, so
	// killing at spawn + killDelay guarantees an empty journal — no
	// matter how the two victims raced each other for shards.
	killDelay = 1200 * time.Millisecond

	// remoteShards is sized so that with the soak platform set every
	// shard is non-empty (unit→shard assignment is a deterministic
	// hash of the unit keys), so the takeover worker must claim and
	// drain all of them.
	remoteShards = 3
)

// epilogue matches memworker's exit line:
//
//	memworker host/pid/tok: 5 units across 3 claims, 0 fenced, drained=true
var epilogue = regexp.MustCompile(`(\d+) units across (\d+) claims, (\d+) fenced, drained=(true|false)`)

// workerProc is one spawned memworker process with captured output.
type workerProc struct {
	cmd *exec.Cmd
	out bytes.Buffer
}

func startWorker(bin string, args ...string) (*workerProc, error) {
	w := &workerProc{cmd: exec.Command(bin, args...)}
	w.cmd.Stdout = &w.out
	w.cmd.Stderr = &w.out
	if err := w.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start memworker %v: %w", args, err)
	}
	return w, nil
}

// report parses the worker's epilogue line.
func (w *workerProc) report() (units, claims, fenced int, drained bool, err error) {
	m := epilogue.FindStringSubmatch(w.out.String())
	if m == nil {
		return 0, 0, 0, false, fmt.Errorf("no worker epilogue in output:\n%s", w.out.String())
	}
	fmt.Sscan(m[1], &units)
	fmt.Sscan(m[2], &claims)
	fmt.Sscan(m[3], &fenced)
	return units, claims, fenced, m[4] == "true", nil
}

func soakRemote(seed uint64) error {
	dir, err := os.MkdirTemp("", "memcontention-soak-remote-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Uninterrupted sequential baseline, in-process.
	baseline, err := campaign.Pipeline(campaign.Config{Seed: seed}, platforms)
	if err != nil {
		return fmt.Errorf("baseline pipeline: %w", err)
	}
	baseDir := filepath.Join(dir, "baseline")
	if err := baseline.Write(baseDir); err != nil {
		return err
	}

	// Build the real memworker binary once; every step below goes
	// through the production CLI, not in-process shortcuts.
	bin := filepath.Join(dir, "memworker")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/memworker").CombinedOutput(); err != nil {
		return fmt.Errorf("build memworker: %w\n%s", err, out)
	}

	runDir := filepath.Join(dir, "run")
	leaseDir := filepath.Join(runDir, campaign.LeaseDir)
	doomed := []string{
		"-dir", runDir,
		"-seed", fmt.Sprint(seed),
		"-platforms", strings.Join(platforms, ","),
		"-shard-count", fmt.Sprint(remoteShards),
		"-lease-ttl", remoteTTL.String(),
		"-heartbeat", remoteHeartbeat.String(),
		"-unit-delay", unitDelay.String(),
	}

	var fleet []*workerProc
	defer func() {
		// Leave no processes behind on an assertion failure (Kill works
		// on stopped processes too; already-reaped ones just error).
		for _, w := range fleet {
			w.cmd.Process.Kill()
		}
	}()

	// The zombie starts alone: with no rivals it claims the first
	// non-empty shard, writes campaign.json, and sits in its first
	// unit's throttle. Freezing it once its lease file appears is
	// guaranteed to catch it mid-unit with an empty journal.
	zombie, err := startWorker(bin, doomed...)
	if err != nil {
		return err
	}
	fleet = append(fleet, zombie)
	if err := waitLeases(leaseDir, 1); err != nil {
		return fmt.Errorf("%w\nzombie output:\n%s", err, zombie.out.String())
	}
	if err := zombie.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	logf("  [remote] zombie claimed a shard and was SIGSTOPped mid-unit")

	// Two more workers join (the zombie's lease is fresh, so they pick
	// other shards — or race each other for them, it doesn't matter)
	// and are SIGKILLed before any of their units can journal.
	var victims []*workerProc
	for i := 0; i < 2; i++ {
		w, err := startWorker(bin, doomed...)
		if err != nil {
			return err
		}
		fleet = append(fleet, w)
		victims = append(victims, w)
	}
	time.Sleep(killDelay)
	for i, w := range victims {
		if err := w.cmd.Process.Signal(syscall.SIGKILL); err != nil {
			return err
		}
		werr := w.cmd.Wait()
		if werr == nil || !strings.Contains(werr.Error(), "signal: killed") {
			return fmt.Errorf("victim %d should have died of SIGKILL, got: %w\noutput:\n%s", i, werr, w.out.String())
		}
	}
	logf("  [remote] SIGKILLed 2 workers mid-unit")
	time.Sleep(staleWait)

	// The takeover worker joins bare — everything comes from
	// campaign.json — and must claim all shards past the TTL and drain
	// the whole campaign: nothing was journaled before the signals, so
	// every unit is still pending.
	succ, err := startWorker(bin, "-dir", runDir)
	if err != nil {
		return err
	}
	fleet = append(fleet, succ)
	if err := succ.cmd.Wait(); err != nil {
		return fmt.Errorf("takeover worker failed: %w\noutput:\n%s", err, succ.out.String())
	}
	units, claims, _, drained, err := succ.report()
	if err != nil {
		return fmt.Errorf("takeover worker: %w", err)
	}
	if !drained || claims != remoteShards || units == 0 {
		return fmt.Errorf("takeover worker: %d units across %d claims, drained=%v; want all %d shards taken over and drained\noutput:\n%s",
			units, claims, drained, remoteShards, succ.out.String())
	}
	logf("  [remote] takeover worker drained %d units across %d orphaned shards", units, claims)

	// Resurrect the zombie. It still holds an in-memory lease for a
	// shard that was reclaimed and drained at a higher epoch while it
	// slept; it finishes its stale pending list into its own epoch
	// journal — now a dead epoch — and must exit cleanly without
	// corrupting anything.
	if err := zombie.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return err
	}
	if err := zombie.cmd.Wait(); err != nil {
		return fmt.Errorf("resurrected zombie exited dirty: %w\noutput:\n%s", err, zombie.out.String())
	}
	zunits, _, _, zdrained, err := zombie.report()
	if err != nil {
		return fmt.Errorf("zombie: %w", err)
	}
	if zunits == 0 || !zdrained {
		return fmt.Errorf("zombie ran %d units, drained=%v; want its stale pending list written into the dead epoch\noutput:\n%s",
			zunits, zdrained, zombie.out.String())
	}
	logf("  [remote] zombie resumed, wrote %d units into its dead epoch, exited clean", zunits)

	if err := assertDeadEpochWrite(runDir); err != nil {
		return err
	}

	// Finalize through the production path and byte-check.
	mergedDir := filepath.Join(dir, "merged")
	m, err := startWorker(bin, "-dir", runDir, "-merge", "-out", mergedDir)
	if err != nil {
		return err
	}
	fleet = append(fleet, m)
	if err := m.cmd.Wait(); err != nil {
		return fmt.Errorf("memworker -merge failed: %w\noutput:\n%s", err, m.out.String())
	}
	if err := compareDirs(baseDir, mergedDir); err != nil {
		return err
	}

	// Nothing to clean up by hand: every lease was either released or
	// superseded and then released by its final owner.
	if left, _ := filepath.Glob(filepath.Join(leaseDir, "*.lease")); len(left) != 0 {
		return fmt.Errorf("lease files left after the campaign drained: %v", left)
	}
	fmt.Printf("soak: remote ok — 2 workers SIGKILLed + 1 zombie fenced (%d dead-epoch writes), takeover drained %d units across %d shards, merged artifacts byte-identical\n",
		zunits, units, remoteShards)
	return nil
}

// waitLeases polls until n lease files exist — i.e. n shards are
// claimed and their owners are mid-unit (units are throttled by
// unitDelay, so claims strictly precede the first journal append).
func waitLeases(leaseDir string, n int) error {
	const tick = 20 * time.Millisecond
	for i := 0; i < int(10*time.Second/tick); i++ {
		matches, err := filepath.Glob(filepath.Join(leaseDir, "*.lease"))
		if err != nil {
			return err
		}
		if len(matches) >= n {
			return nil
		}
		time.Sleep(tick)
	}
	return fmt.Errorf("no worker claimed a shard within 10s")
}

// assertDeadEpochWrite proves the takeover and the zombie write from
// the journals alone: the zombie's shard must have been reclaimed at a
// fencing epoch >= 2, with at least one unit key appearing in two
// different epoch journals of that shard — the zombie's late append
// plus the successor's re-execution — which the merge path must
// reconcile to one opinion (byte-equal payloads, checked by -merge).
func assertDeadEpochWrite(runDir string) error {
	entries, err := os.ReadDir(runDir)
	if err != nil {
		return err
	}
	type journal struct {
		epoch uint64
		keys  map[string]bool
	}
	byShard := map[int][]journal{}
	for _, e := range entries {
		shard, epoch, ok := checkpoint.ParseShardFile(e.Name())
		if !ok {
			continue
		}
		ents, err := checkpoint.MergeShardFiles([]string{filepath.Join(runDir, e.Name())})
		if err != nil {
			return fmt.Errorf("read %s: %w", e.Name(), err)
		}
		keys := make(map[string]bool, len(ents))
		for _, ent := range ents {
			keys[ent.Key] = true
		}
		byShard[shard] = append(byShard[shard], journal{epoch, keys})
	}
	if len(byShard) != remoteShards {
		return fmt.Errorf("journals for %d shards, want %d", len(byShard), remoteShards)
	}
	reclaimed, overlap := false, false
	for _, js := range byShard {
		var maxEpoch uint64
		seen := map[string]bool{}
		for _, j := range js {
			if j.epoch > maxEpoch {
				maxEpoch = j.epoch
			}
			for k := range j.keys {
				if seen[k] {
					overlap = true
				}
				seen[k] = true
			}
		}
		if maxEpoch >= 2 {
			reclaimed = true
		}
	}
	if !reclaimed {
		return fmt.Errorf("no shard was ever reclaimed at a bumped fencing epoch")
	}
	if !overlap {
		return fmt.Errorf("no unit key landed in two epochs of one shard — the zombie never wrote after being deposed")
	}
	return nil
}
