// The -remote phase soaks the lease-coordinated multi-process campaign
// (docs/campaigns.md, "Remote campaigns") with real memworker processes
// and real signals — the one failure surface the in-process tests
// cannot reach. A first worker claims a shard and is SIGSTOPped mid-unit
// so its lease expires while the process lives on; two more workers are
// SIGKILLed mid-unit. A fresh worker started after the TTL must take
// every shard over with no manual cleanup and drain the campaign. The
// frozen worker is then SIGCONTed: a genuine zombie that still believes
// it owns its shard and keeps writing — its late appends must land in
// its own dead-epoch journal and merge away against the successor's
// re-execution. Finally `memworker -merge` assembles the artifacts,
// which must be byte-identical to an uninterrupted sequential run.
//
// The choreography is deliberately sequenced so every assertion is
// deterministic: the zombie starts alone (no claim races — it takes the
// first non-empty shard), and the kill victims die strictly before
// their first unit can journal (killDelay < unitDelay), so the
// takeover worker always finds the entire campaign pending.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
)

// Lease timings for the remote phase: short enough that a full
// orphan-takeover cycle fits in a few seconds of wall clock, with the
// heartbeat comfortably under the TTL/3 validation bound.
const (
	remoteTTL       = 2 * time.Second
	remoteHeartbeat = 250 * time.Millisecond

	// staleWait is how long the harness waits after the last signal
	// before starting the takeover worker: the TTL plus the default
	// grace (TTL/2), plus one heartbeat that may have landed just
	// before the signal, plus margin for slow CI runners.
	staleWait = remoteTTL + remoteTTL/2 + remoteHeartbeat + 750*time.Millisecond

	// unitDelay throttles the doomed workers so every signal lands
	// while their first unit is still in flight — nothing journaled,
	// every shard an orphan to take over.
	unitDelay = 1500 * time.Millisecond

	// killDelay is how long the SIGKILL victims get to run. Strictly
	// less than unitDelay: a worker's first journal append happens no
	// earlier than claim time + unitDelay >= spawn + unitDelay, so
	// killing at spawn + killDelay guarantees an empty journal — no
	// matter how the two victims raced each other for shards.
	killDelay = 1200 * time.Millisecond

	// remoteShards is sized so that with the soak platform set every
	// shard is non-empty (unit→shard assignment is a deterministic
	// hash of the unit keys), so the takeover worker must claim and
	// drain all of them.
	remoteShards = 3
)

// epilogue matches memworker's exit line:
//
//	memworker host/pid/tok: 5 units across 3 claims, 0 fenced, drained=true
var epilogue = regexp.MustCompile(`(\d+) units across (\d+) claims, (\d+) fenced, drained=(true|false)`)

// workerProc is one spawned memworker process with captured output.
type workerProc struct {
	cmd *exec.Cmd
	out bytes.Buffer
}

func startWorker(bin string, args ...string) (*workerProc, error) {
	w := &workerProc{cmd: exec.Command(bin, args...)}
	w.cmd.Stdout = &w.out
	w.cmd.Stderr = &w.out
	if err := w.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start memworker %v: %w", args, err)
	}
	return w, nil
}

// report parses the worker's epilogue line.
func (w *workerProc) report() (units, claims, fenced int, drained bool, err error) {
	m := epilogue.FindStringSubmatch(w.out.String())
	if m == nil {
		return 0, 0, 0, false, fmt.Errorf("no worker epilogue in output:\n%s", w.out.String())
	}
	fmt.Sscan(m[1], &units)
	fmt.Sscan(m[2], &claims)
	fmt.Sscan(m[3], &fenced)
	return units, claims, fenced, m[4] == "true", nil
}

func soakRemote(seed uint64) error {
	dir, err := os.MkdirTemp("", "memcontention-soak-remote-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Uninterrupted sequential baseline, in-process.
	baseline, err := campaign.Pipeline(campaign.Config{Seed: seed}, platforms)
	if err != nil {
		return fmt.Errorf("baseline pipeline: %w", err)
	}
	baseDir := filepath.Join(dir, "baseline")
	if err := baseline.Write(baseDir); err != nil {
		return err
	}

	// Build the real memworker and memtop binaries once; every step
	// below goes through the production CLIs, not in-process shortcuts.
	bin := filepath.Join(dir, "memworker")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/memworker").CombinedOutput(); err != nil {
		return fmt.Errorf("build memworker: %w\n%s", err, out)
	}
	topBin := filepath.Join(dir, "memtop")
	if out, err := exec.Command("go", "build", "-o", topBin, "./cmd/memtop").CombinedOutput(); err != nil {
		return fmt.Errorf("build memtop: %w\n%s", err, out)
	}

	runDir := filepath.Join(dir, "run")
	leaseDir := filepath.Join(runDir, campaign.LeaseDir)
	doomed := []string{
		"-dir", runDir,
		"-seed", fmt.Sprint(seed),
		"-platforms", strings.Join(platforms, ","),
		"-shard-count", fmt.Sprint(remoteShards),
		"-lease-ttl", remoteTTL.String(),
		"-heartbeat", remoteHeartbeat.String(),
		"-unit-delay", unitDelay.String(),
	}

	var fleet []*workerProc
	defer func() {
		// Leave no processes behind on an assertion failure (Kill works
		// on stopped processes too; already-reaped ones just error).
		for _, w := range fleet {
			w.cmd.Process.Kill()
		}
	}()

	// The zombie starts alone: with no rivals it claims the first
	// non-empty shard, writes campaign.json, and sits in its first
	// unit's throttle. Freezing it once its lease file appears is
	// guaranteed to catch it mid-unit with an empty journal.
	zombie, err := startWorker(bin, doomed...)
	if err != nil {
		return err
	}
	fleet = append(fleet, zombie)
	if err := waitLeases(leaseDir, 1); err != nil {
		return fmt.Errorf("%w\nzombie output:\n%s", err, zombie.out.String())
	}
	if err := zombie.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	logf("  [remote] zombie claimed a shard and was SIGSTOPped mid-unit")

	// Two more workers join (the zombie's lease is fresh, so they pick
	// other shards — or race each other for them, it doesn't matter)
	// and are SIGKILLed before any of their units can journal.
	var victims []*workerProc
	for i := 0; i < 2; i++ {
		w, err := startWorker(bin, doomed...)
		if err != nil {
			return err
		}
		fleet = append(fleet, w)
		victims = append(victims, w)
	}
	time.Sleep(killDelay)
	for i, w := range victims {
		if err := w.cmd.Process.Signal(syscall.SIGKILL); err != nil {
			return err
		}
		werr := w.cmd.Wait()
		if werr == nil || !strings.Contains(werr.Error(), "signal: killed") {
			return fmt.Errorf("victim %d should have died of SIGKILL, got: %w\noutput:\n%s", i, werr, w.out.String())
		}
	}
	logf("  [remote] SIGKILLed 2 workers mid-unit")
	time.Sleep(staleWait)

	// Mid-churn fleet view: the zombie is frozen and the victims are
	// dead, so memtop must show three stale running workers, only stale
	// leases, and — being strictly read-only — leave the campaign
	// directory byte-for-byte untouched.
	if err := assertMidChurnView(topBin, runDir); err != nil {
		return err
	}
	logf("  [remote] memtop mid-churn: 3 stale workers, stale leases only, directory untouched")

	// The takeover worker joins bare — everything comes from
	// campaign.json — and must claim all shards past the TTL and drain
	// the whole campaign: nothing was journaled before the signals, so
	// every unit is still pending.
	succ, err := startWorker(bin, "-dir", runDir)
	if err != nil {
		return err
	}
	fleet = append(fleet, succ)
	if err := succ.cmd.Wait(); err != nil {
		return fmt.Errorf("takeover worker failed: %w\noutput:\n%s", err, succ.out.String())
	}
	units, claims, sfenced, drained, err := succ.report()
	if err != nil {
		return fmt.Errorf("takeover worker: %w", err)
	}
	if !drained || claims != remoteShards || units == 0 {
		return fmt.Errorf("takeover worker: %d units across %d claims, drained=%v; want all %d shards taken over and drained\noutput:\n%s",
			units, claims, drained, remoteShards, succ.out.String())
	}
	logf("  [remote] takeover worker drained %d units across %d orphaned shards", units, claims)

	// Resurrect the zombie. It still holds an in-memory lease for a
	// shard that was reclaimed and drained at a higher epoch while it
	// slept; it finishes its stale pending list into its own epoch
	// journal — now a dead epoch — and must exit cleanly without
	// corrupting anything.
	if err := zombie.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return err
	}
	if err := zombie.cmd.Wait(); err != nil {
		return fmt.Errorf("resurrected zombie exited dirty: %w\noutput:\n%s", err, zombie.out.String())
	}
	zunits, _, zfenced, zdrained, err := zombie.report()
	if err != nil {
		return fmt.Errorf("zombie: %w", err)
	}
	if zunits == 0 || !zdrained {
		return fmt.Errorf("zombie ran %d units, drained=%v; want its stale pending list written into the dead epoch\noutput:\n%s",
			zunits, zdrained, zombie.out.String())
	}
	logf("  [remote] zombie resumed, wrote %d units into its dead epoch, exited clean", zunits)

	if err := assertDeadEpochWrite(runDir); err != nil {
		return err
	}

	// Finalize through the production path and byte-check.
	mergedDir := filepath.Join(dir, "merged")
	m, err := startWorker(bin, "-dir", runDir, "-merge", "-out", mergedDir)
	if err != nil {
		return err
	}
	fleet = append(fleet, m)
	if err := m.cmd.Wait(); err != nil {
		return fmt.Errorf("memworker -merge failed: %w\noutput:\n%s", err, m.out.String())
	}
	if err := compareDirs(baseDir, mergedDir); err != nil {
		return err
	}

	// Nothing to clean up by hand: every lease was either released or
	// superseded and then released by its final owner.
	if left, _ := filepath.Glob(filepath.Join(leaseDir, "*.lease")); len(left) != 0 {
		return fmt.Errorf("lease files left after the campaign drained: %v", left)
	}

	// Post-merge fleet view: memtop's unit counts must match the merged
	// ground truth, and the event timeline must tell the churn story with
	// every claim, takeover, fence and completion exactly once.
	if err := assertFinalFleetView(topBin, runDir, units, zfenced+sfenced); err != nil {
		return err
	}
	logf("  [remote] memtop final view consistent: %d/%d units, exactly-once timeline", units, units)
	fmt.Printf("soak: remote ok — 2 workers SIGKILLed + 1 zombie fenced (%d dead-epoch writes), takeover drained %d units across %d shards, merged artifacts byte-identical\n",
		zunits, units, remoteShards)
	return nil
}

// waitLeases polls until n lease files exist — i.e. n shards are
// claimed and their owners are mid-unit (units are throttled by
// unitDelay, so claims strictly precede the first journal append).
func waitLeases(leaseDir string, n int) error {
	const tick = 20 * time.Millisecond
	for i := 0; i < int(10*time.Second/tick); i++ {
		matches, err := filepath.Glob(filepath.Join(leaseDir, "*.lease"))
		if err != nil {
			return err
		}
		if len(matches) >= n {
			return nil
		}
		time.Sleep(tick)
	}
	return fmt.Errorf("no worker claimed a shard within 10s")
}

// assertDeadEpochWrite proves the takeover and the zombie write from
// the journals alone: the zombie's shard must have been reclaimed at a
// fencing epoch >= 2, with at least one unit key appearing in two
// different epoch journals of that shard — the zombie's late append
// plus the successor's re-execution — which the merge path must
// reconcile to one opinion (byte-equal payloads, checked by -merge).
func assertDeadEpochWrite(runDir string) error {
	entries, err := os.ReadDir(runDir)
	if err != nil {
		return err
	}
	type journal struct {
		epoch uint64
		keys  map[string]bool
	}
	byShard := map[int][]journal{}
	for _, e := range entries {
		shard, epoch, ok := checkpoint.ParseShardFile(e.Name())
		if !ok {
			continue
		}
		ents, err := checkpoint.MergeShardFiles([]string{filepath.Join(runDir, e.Name())})
		if err != nil {
			return fmt.Errorf("read %s: %w", e.Name(), err)
		}
		keys := make(map[string]bool, len(ents))
		for _, ent := range ents {
			keys[ent.Key] = true
		}
		byShard[shard] = append(byShard[shard], journal{epoch, keys})
	}
	if len(byShard) != remoteShards {
		return fmt.Errorf("journals for %d shards, want %d", len(byShard), remoteShards)
	}
	reclaimed, overlap := false, false
	for _, js := range byShard {
		var maxEpoch uint64
		seen := map[string]bool{}
		for _, j := range js {
			if j.epoch > maxEpoch {
				maxEpoch = j.epoch
			}
			for k := range j.keys {
				if seen[k] {
					overlap = true
				}
				seen[k] = true
			}
		}
		if maxEpoch >= 2 {
			reclaimed = true
		}
	}
	if !reclaimed {
		return fmt.Errorf("no shard was ever reclaimed at a bumped fencing epoch")
	}
	if !overlap {
		return fmt.Errorf("no unit key landed in two epochs of one shard — the zombie never wrote after being deposed")
	}
	return nil
}

// runMemtop runs the memtop binary against the campaign directory and
// verifies it is strictly read-only: the recursive (path, size) snapshot
// of the directory must be identical before and after. No worker is
// appending during either probe (zombie frozen or exited, victims dead),
// so any difference is memtop's own doing.
func runMemtop(bin, runDir string, args ...string) (string, error) {
	before, err := snapshotDir(runDir)
	if err != nil {
		return "", err
	}
	cmd := exec.Command(bin, append([]string{"-dir", runDir, "-lease-ttl", remoteTTL.String()}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("memtop %v: %w\n%s", args, err, out)
	}
	after, err := snapshotDir(runDir)
	if err != nil {
		return "", err
	}
	if before != after {
		return "", fmt.Errorf("memtop %v mutated the campaign directory:\nbefore:\n%s\nafter:\n%s", args, before, after)
	}
	return string(out), nil
}

// snapshotDir renders the campaign directory as sorted "path size" lines.
func snapshotDir(dir string) (string, error) {
	var b strings.Builder
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s %d\n", path, info.Size())
		return nil
	})
	return b.String(), err
}

// fleetDoc is the subset of memtop's JSON report the soak asserts on.
type fleetDoc struct {
	Units       int `json:"units"`
	Done        int `json:"done"`
	Pending     int `json:"pending"`
	Quarantined int `json:"quarantined"`
	Workers     []struct {
		Worker string `json:"worker"`
		State  string `json:"state"`
		Stale  bool   `json:"stale"`
	} `json:"workers"`
	Leases []struct {
		Shard int    `json:"shard"`
		State string `json:"state"`
	} `json:"leases"`
	Timeline []campaign.Event `json:"timeline"`
}

func memtopJSON(bin, runDir string) (*fleetDoc, error) {
	out, err := runMemtop(bin, runDir, "-json")
	if err != nil {
		return nil, err
	}
	var doc fleetDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		return nil, fmt.Errorf("memtop -json output: %w\n%s", err, out)
	}
	return &doc, nil
}

// assertMidChurnView checks the fleet view while the churn is at its
// worst: every worker that ever joined shows a stale running beacon,
// every surviving lease is stale, and nothing is done yet (the doomed
// workers were all interrupted before their first journal append).
func assertMidChurnView(bin, runDir string) error {
	doc, err := memtopJSON(bin, runDir)
	if err != nil {
		return err
	}
	if len(doc.Workers) != 3 {
		return fmt.Errorf("mid-churn: %d workers in the fleet view, want 3", len(doc.Workers))
	}
	for _, w := range doc.Workers {
		if w.State != campaign.WorkerRunning || !w.Stale {
			return fmt.Errorf("mid-churn: worker %s is %s (stale=%v), want stale running", w.Worker, w.State, w.Stale)
		}
	}
	if len(doc.Leases) == 0 {
		return fmt.Errorf("mid-churn: no leases in the fleet view; the orphans' leases should survive their owners")
	}
	for _, l := range doc.Leases {
		if l.State == "live" {
			return fmt.Errorf("mid-churn: shard %d lease reads live; every owner is dead or frozen", l.Shard)
		}
	}
	if doc.Done != 0 || doc.Pending != doc.Units {
		return fmt.Errorf("mid-churn: %d/%d done with %d pending; nothing should have journaled before the signals",
			doc.Done, doc.Units, doc.Pending)
	}
	// The human-readable report renders from the same data without error.
	if _, err := runMemtop(bin, runDir); err != nil {
		return err
	}
	return nil
}

// assertFinalFleetView checks the drained campaign: memtop's unit counts
// agree with the merged ground truth, the beacons tell who drained and
// who crashed, and the merged timeline carries every claim, takeover,
// fence and shard completion exactly once.
func assertFinalFleetView(bin, runDir string, mergedUnits, wantFences int) error {
	doc, err := memtopJSON(bin, runDir)
	if err != nil {
		return err
	}
	if doc.Done != mergedUnits || doc.Done != doc.Units || doc.Pending != 0 || doc.Quarantined != 0 {
		return fmt.Errorf("final view: %d/%d done, %d pending, %d quarantined; merge reported %d units",
			doc.Done, doc.Units, doc.Pending, doc.Quarantined, mergedUnits)
	}
	if len(doc.Leases) != 0 {
		return fmt.Errorf("final view: %d leases survive a drained campaign", len(doc.Leases))
	}
	var drained, staleRunning int
	for _, w := range doc.Workers {
		switch {
		case w.State == campaign.WorkerDrained && !w.Stale:
			drained++
		case w.State == campaign.WorkerRunning && w.Stale:
			staleRunning++
		default:
			return fmt.Errorf("final view: worker %s in unexpected state %s (stale=%v)", w.Worker, w.State, w.Stale)
		}
	}
	if drained != 2 || staleRunning != 2 {
		return fmt.Errorf("final view: %d drained + %d stale-running workers, want 2 + 2 (zombie and takeover drained; victims crashed)",
			drained, staleRunning)
	}

	// Exactly-once timeline: fencing epochs are claimed by at most one
	// owner ever, so each (shard, epoch) may carry one claim-or-takeover
	// and one completion; lifecycle events are one per worker.
	counts := map[campaign.EventType]int{}
	claimsAt := map[string]int{}
	completesAt := map[string]int{}
	joins := map[string]int{}
	fences := map[string]int{}
	for _, e := range doc.Timeline {
		counts[e.Type]++
		at := fmt.Sprintf("%d@e%d", e.Shard, e.Epoch)
		switch e.Type {
		case campaign.EventLeaseClaim, campaign.EventOrphanTakeover:
			claimsAt[at]++
		case campaign.EventShardComplete:
			completesAt[at]++
		case campaign.EventWorkerJoin:
			joins[e.Worker]++
		case campaign.EventLeaseFence:
			fences[at]++
		}
	}
	for at, n := range claimsAt {
		if n != 1 {
			return fmt.Errorf("timeline: %d claim events for %s, want exactly 1", n, at)
		}
	}
	for at, n := range completesAt {
		if n != 1 {
			return fmt.Errorf("timeline: %d shard-complete events for %s, want exactly 1", n, at)
		}
	}
	for at, n := range fences {
		if n != 1 {
			return fmt.Errorf("timeline: %d fence events for %s, want exactly 1", n, at)
		}
	}
	for w, n := range joins {
		if n != 1 {
			return fmt.Errorf("timeline: worker %s joined %d times", w, n)
		}
	}
	if len(joins) != 4 {
		return fmt.Errorf("timeline: %d workers joined, want 4 (zombie, 2 victims, takeover)", len(joins))
	}
	if counts[campaign.EventWorkerDrain] != 2 {
		return fmt.Errorf("timeline: %d drains, want 2 (zombie and takeover)", counts[campaign.EventWorkerDrain])
	}
	if counts[campaign.EventOrphanTakeover] < 1 {
		return fmt.Errorf("timeline: no orphan takeover recorded; the takeover worker reclaimed stale shards")
	}
	if counts[campaign.EventLeaseFence] != wantFences {
		return fmt.Errorf("timeline: %d fence events, workers reported %d fences", counts[campaign.EventLeaseFence], wantFences)
	}
	if counts[campaign.EventShardComplete] < remoteShards {
		return fmt.Errorf("timeline: %d shard completions, want >= %d", counts[campaign.EventShardComplete], remoteShards)
	}

	// The CLI timeline and the library agree line for line.
	events, err := campaign.ReadEvents(runDir)
	if err != nil {
		return err
	}
	tlOut, err := runMemtop(bin, runDir, "-events")
	if err != nil {
		return err
	}
	lines := strings.Count(tlOut, "\n")
	if lines != len(events) || len(events) != len(doc.Timeline) {
		return fmt.Errorf("timeline disagreement: %d CLI lines, %d library events, %d JSON events",
			lines, len(events), len(doc.Timeline))
	}
	return nil
}
