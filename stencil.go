package memcontention

import (
	"memcontention/internal/stencil"
)

// Stencil application re-exports: the §VI use case of a contention-aware
// runtime driving an iterative halo-exchange solver.
type (
	// StencilConfig parameterises the application.
	StencilConfig = stencil.Config
	// StencilResult reports a run.
	StencilResult = stencil.Result
	// StencilAdvice is the advisor's recommended configuration.
	StencilAdvice = stencil.Advice
	// StencilSchedule orders an iteration.
	StencilSchedule = stencil.Schedule
)

// Stencil schedules.
const (
	// StencilSequential computes, then communicates (no overlap).
	StencilSequential = stencil.Sequential
	// StencilOverlap overlaps the halo exchange with the computation.
	StencilOverlap = stencil.Overlap
)

// RunStencil executes the halo-exchange application on a cluster. Like
// Cluster.Run, one cluster runs one job.
func RunStencil(c *Cluster, cfg StencilConfig) (StencilResult, error) {
	return stencil.Run(c, cfg)
}

// AdviseStencil searches every (cores, placement) configuration with the
// calibrated model and returns the one minimising the predicted
// overlapped iteration time.
func AdviseStencil(m Model, plat *Platform, base StencilConfig) (StencilAdvice, error) {
	return stencil.Advise(m, plat, base)
}

// PredictStencilIteration estimates one configuration's overlapped
// iteration time from the model.
func PredictStencilIteration(m Model, cfg StencilConfig) (StencilAdvice, error) {
	return stencil.PredictIteration(m, cfg)
}

// NaiveStencilConfig is the contention-unaware default: all cores of the
// first socket, every buffer on node 0.
func NaiveStencilConfig(plat *Platform, base StencilConfig) StencilConfig {
	return stencil.NaiveConfig(plat, base)
}

// interface check: *Cluster satisfies the stencil runner contract.
var _ stencil.Runner = (*Cluster)(nil)
